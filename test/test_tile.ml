(* Tile-sharded speculation: partition determinism, mask containment and
   the headline equivalence — [Flow3d.run_tiled] is byte-identical to the
   untiled [Flow3d.run] at every tiles × jobs combination. *)

module G = Tdf_grid.Grid
module Flow3d = Tdf_legalizer.Flow3d
module Tile = Tdf_legalizer.Tile
module Spec = Tdf_benchgen.Spec

let tile_counts = [ 1; 2; 4; 9 ]

let job_counts = [ 1; 2; 8 ]

let with_jobs jobs f =
  let before = Tdf_par.jobs () in
  Fun.protect
    ~finally:(fun () -> Tdf_par.set_jobs before)
    (fun () ->
      Tdf_par.set_jobs jobs;
      f ())

let small_grid () =
  let d = Tdf_benchgen.Gen.generate ~scale:0.02 (Spec.find Spec.Iccad2023 "case2") in
  let bw = Flow3d.flow_bin_width d ~factor:10. in
  let g = G.build d ~bin_width:bw in
  G.assign_initial_exn g (Tdf_netlist.Placement.initial d);
  g

(* The partition is a pure function of the grid geometry and the tile
   count: identical at every job count, total over the bins, and within
   range. *)
let test_partition_shape_only () =
  let g = small_grid () in
  List.iter
    (fun tiles ->
      let parts =
        List.map (fun jobs -> with_jobs jobs (fun () -> Tile.partition g ~tiles)) job_counts
      in
      let first = List.hd parts in
      Array.iter
        (fun t ->
          Alcotest.(check bool)
            (Printf.sprintf "tiles=%d: tile id in range" tiles)
            true
            (t >= 0 && t < tiles))
        first;
      List.iteri
        (fun i p ->
          Alcotest.(check bool)
            (Printf.sprintf "tiles=%d: partition at jobs=%d matches jobs=%d" tiles
               (List.nth job_counts (i + 1))
               (List.hd job_counts))
            true (p = first))
        (List.tl parts))
    tile_counts

(* Masks cover their interior, respect [within], and the halo ring stays
   connected to the interior (every mask bin is reachable, by BFS
   construction). *)
let test_masks_cover_interior () =
  let g = small_grid () in
  List.iter
    (fun tiles ->
      let tl = Tile.make g ~tiles in
      Array.iteri
        (fun bid t ->
          if t >= 0 then
            Alcotest.(check bool)
              (Printf.sprintf "tiles=%d: bin %d inside its own mask" tiles bid)
              true
              tl.Tile.t_masks.(t).(bid))
        tl.Tile.t_part)
    tile_counts

let cell_sig g cell =
  G.cell_bins g cell
  |> List.map (fun bid -> Printf.sprintf "%d:%h" bid (G.frag_rho_in g ~cell (g.G.bins.(bid))))
  |> String.concat ","

(* A masked tiled pass must never move a cell all of whose bins are
   masked out — the frozen-region contract the ECO path relies on.
   Randomize the mask seed and the tile count. *)
let test_masked_pass_freezes_outside =
  Props.test ~count:15 "tiled pass never moves a fully masked-out cell"
    (Props.pair (Props.int_range 0 1000) (Props.int_range 1 9))
    (fun (seed, tiles) ->
      let g = small_grid () in
      let n = G.n_bins g in
      let mask = G.dirty_region g ~seeds:[ seed mod n ] ~radius:6 in
      let n_cells = Array.length g.G.cell_frags in
      let frozen =
        List.filter
          (fun c ->
            let bins = G.cell_bins g c in
            bins <> [] && List.for_all (fun b -> not mask.(b)) bins)
          (List.init n_cells Fun.id)
      in
      let before = List.map (fun c -> (c, cell_sig g c)) frozen in
      ignore
        (Flow3d.tiled_local_pass ~mask ~tiles Tdf_legalizer.Config.default
           ~budget:Tdf_util.Budget.unlimited g);
      List.for_all (fun (c, s) -> String.equal s (cell_sig g c)) before)

(* Headline equivalence: the tiled run's placement is byte-identical to
   the untiled run on every tiles × jobs combination. *)
let equivalence_cases =
  [ (Spec.Iccad2022, "case2"); (Spec.Iccad2023, "case2"); (Spec.Iccad2023, "case3") ]

let test_run_tiled_equivalence () =
  List.iter
    (fun (suite, case) ->
      let design = Tdf_benchgen.Gen.generate ~scale:0.02 (Spec.find suite case) in
      let untiled =
        match Flow3d.run design with
        | Ok r -> Tdf_io.Text.placement_to_string design r.Flow3d.placement
        | Error e -> Alcotest.fail (Flow3d.error_to_string e)
      in
      List.iter
        (fun tiles ->
          List.iter
            (fun jobs ->
              let tiled =
                with_jobs jobs (fun () ->
                    match Flow3d.run_tiled ~tiles design with
                    | Ok r -> Tdf_io.Text.placement_to_string design r.Flow3d.placement
                    | Error e -> Alcotest.fail (Flow3d.error_to_string e))
              in
              Alcotest.(check string)
                (Printf.sprintf "%s/%s: tiles=%d jobs=%d matches untiled"
                   (Spec.suite_slug suite) case tiles jobs)
                untiled tiled)
            [ 1; 4 ])
        tile_counts)
    equivalence_cases

(* Knob precedence mirrors --jobs: CLI beats environment beats default;
   out-of-range values clamp. *)
let test_knob () =
  Tile.set_tiles 0;
  Alcotest.(check int) "set_tiles clamps up" 1 (Tile.tiles ());
  Tile.set_tiles 1000;
  Alcotest.(check int) "set_tiles clamps down" 64 (Tile.tiles ());
  Tile.set_tiles 4;
  Alcotest.(check int) "set_tiles wins" 4 (Tile.tiles ());
  Tile.set_tiles 1

let suite =
  [
    Alcotest.test_case "partition is a function of grid shape only" `Quick
      test_partition_shape_only;
    Alcotest.test_case "tile masks cover their interior" `Quick test_masks_cover_interior;
    test_masked_pass_freezes_outside;
    Alcotest.test_case "run_tiled byte-identical to run (tiles x jobs)" `Quick
      test_run_tiled_equivalence;
    Alcotest.test_case "tile knob clamps and precedence" `Quick test_knob;
  ]
