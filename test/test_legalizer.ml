module G = Tdf_grid.Grid
module L = Tdf_legalizer
module Design = Tdf_netlist.Design
module Placement = Tdf_netlist.Placement
module Legality = Tdf_metrics.Legality
module Displacement = Tdf_metrics.Displacement

let cfg = L.Config.default

let test_config_presets () =
  Alcotest.(check bool) "default d2d on" true L.Config.default.L.Config.d2d_edges;
  Alcotest.(check bool) "no_d2d off" false L.Config.no_d2d.L.Config.d2d_edges;
  let b = L.Config.bonn_emulation in
  Alcotest.(check bool) "bonn 2D" false b.L.Config.d2d_edges;
  Alcotest.(check bool) "bonn exhaustive" true b.L.Config.exhaustive;
  Alcotest.(check bool) "bonn nonneg" false b.L.Config.allow_negative_cost;
  Alcotest.(check bool) "bonn no postopt" false b.L.Config.post_opt

let overflow_grid () =
  let d = Fixtures.clustered () in
  let g = G.build d ~bin_width:20 in
  G.assign_initial_exn g (Placement.initial d);
  (d, g)

let test_select_horizontal_exact () =
  let _, g = overflow_grid () in
  let src =
    Array.to_list g.G.bins
    |> List.find (fun (b : G.bin) -> G.supply b > 0.)
  in
  let dst =
    Array.to_list g.G.edges.(src.G.id)
    |> List.find_map (fun (e : G.edge) ->
           if e.G.kind = G.Horizontal then Some g.G.bins.(e.G.dst) else None)
    |> Option.get
  in
  match L.Select.select cfg g ~src ~dst ~kind:G.Horizontal ~need:13.0 with
  | Some sel ->
    Alcotest.(check (float 1e-6)) "freed exactly need" 13.0 sel.L.Select.freed;
    Alcotest.(check (float 1e-6)) "inflow = freed" 13.0 sel.L.Select.inflow
  | None -> Alcotest.fail "selection expected"

let test_select_whole_covers_need () =
  let _, g = overflow_grid () in
  let src =
    Array.to_list g.G.bins |> List.find (fun (b : G.bin) -> G.supply b > 0.)
  in
  let dst =
    Array.to_list g.G.edges.(src.G.id)
    |> List.find_map (fun (e : G.edge) ->
           if e.G.kind = G.Vertical then Some g.G.bins.(e.G.dst) else None)
    |> Option.get
  in
  match L.Select.select cfg g ~src ~dst ~kind:G.Vertical ~need:13.0 with
  | Some sel ->
    Alcotest.(check bool) "freed >= need" true (sel.L.Select.freed >= 13.0);
    List.iter
      (fun (p : L.Select.pick) ->
        Alcotest.(check (float 1e-9)) "whole cells" 1.0 p.L.Select.p_rho)
      sel.L.Select.picks
  | None -> Alcotest.fail "selection expected"

let test_select_need_exceeds_used () =
  let _, g = overflow_grid () in
  let src =
    Array.to_list g.G.bins |> List.find (fun (b : G.bin) -> G.supply b > 0.)
  in
  let dst =
    Array.to_list g.G.edges.(src.G.id)
    |> List.find_map (fun (e : G.edge) ->
           if e.G.kind = G.Vertical then Some g.G.bins.(e.G.dst) else None)
    |> Option.get
  in
  Alcotest.(check bool) "cannot shed more than held" true
    (L.Select.select cfg g ~src ~dst ~kind:G.Vertical ~need:(src.G.used +. 1.) = None)

let test_augment_resolves_overflow () =
  let _, g = overflow_grid () in
  let st = L.Augment.create_state g in
  let src =
    Array.to_list g.G.bins |> List.find (fun (b : G.bin) -> G.supply b > 0.)
  in
  match L.Augment.search cfg g st ~src with
  | Some path ->
    Alcotest.(check bool) "path length >= 2" true (List.length path >= 2);
    let root = List.hd path in
    Alcotest.(check int) "rooted at src" src.G.id root.L.Augment.pn_bin;
    let before = G.supply src in
    let _ = L.Mover.realize cfg g (L.Mover.create_scratch ()) path in
    Alcotest.(check bool) "supply reduced" true (G.supply src < before);
    (match G.check_invariants g with Ok () -> () | Error e -> Alcotest.fail e)
  | None -> Alcotest.fail "expected augmenting path"

let test_augment_none_on_balanced () =
  let d = Fixtures.clustered () in
  let g = G.build d ~bin_width:20 in
  (* no cells assigned: no supply anywhere *)
  let st = L.Augment.create_state g in
  Alcotest.(check bool) "no search from non-overflowed" true
    (L.Augment.search cfg g st ~src:g.G.bins.(0) = None)

let test_flow3d_legalizes_cluster () =
  let d = Fixtures.clustered () in
  let r = L.Flow3d.legalize d in
  let rep = Legality.check d r.L.Flow3d.placement in
  Alcotest.(check int) "legal" 0 rep.Legality.n_violations;
  Alcotest.(check (float 1e-6)) "no residual overflow" 0.
    r.L.Flow3d.stats.L.Flow3d.residual_overflow

let test_flow3d_with_macro () =
  let d = Fixtures.with_macro () in
  let r = L.Flow3d.legalize d in
  let rep = Legality.check d r.L.Flow3d.placement in
  Alcotest.(check int) "legal with macro" 0 rep.Legality.n_violations

let test_no_d2d_keeps_dies () =
  let d = Fixtures.random 7 in
  let r = L.Flow3d.legalize ~cfg:L.Config.no_d2d d in
  let p = r.L.Flow3d.placement in
  let nd = Design.n_dies d in
  for c = 0 to Design.n_cells d - 1 do
    let init = Tdf_netlist.Cell.nearest_die (Design.cell d c) ~n_dies:nd in
    Alcotest.(check int) (Printf.sprintf "cell %d stays on its die" c) init
      p.Placement.die.(c)
  done;
  Alcotest.(check int) "0 d2d cells reported" 0 r.L.Flow3d.stats.L.Flow3d.d2d_cells

let test_post_opt_victim_selection () =
  let d = Fixtures.clustered () in
  let p = Placement.initial d in
  (* displace one cell hugely *)
  p.Placement.x.(0) <- 50;
  p.Placement.y.(0) <- 11;
  p.Placement.x.(1) <- 50 + 300;
  Alcotest.(check int) "dmax" 300 (L.Post_opt.max_displacement d p);
  let victims = L.Post_opt.select_victims d p in
  Alcotest.(check (list int)) "only the far cell" [ 1 ] victims;
  let x, y = L.Post_opt.midpoint_target d p 1 in
  Alcotest.(check int) "x midpoint" (50 + 150) x;
  Alcotest.(check int) "y midpoint" 11 y

let test_post_opt_threshold_floor () =
  let d = Fixtures.clustered () in
  let p = Placement.initial d in
  (* 30 < 5*h_r = 50: below the threshold floor, no victims *)
  p.Placement.x.(0) <- 80;
  Alcotest.(check (list int)) "no victims below 5 rows" []
    (L.Post_opt.select_victims d p)

let test_legalize_from_eco () =
  let d = Fixtures.random 42 in
  let r1 = L.Flow3d.legalize d in
  (* ECO: push a handful of cells to one point, then re-legalize from there *)
  let p = Placement.copy r1.L.Flow3d.placement in
  for c = 0 to 4 do
    p.Placement.x.(c) <- 60;
    p.Placement.y.(c) <- 20;
    p.Placement.die.(c) <- 0
  done;
  let r2 = L.Flow3d.legalize_from d p in
  Alcotest.(check int) "ECO result legal" 0
    (Legality.check d r2.L.Flow3d.placement).Legality.n_violations

let prop_legal_on_random_designs =
  QCheck.Test.make ~name:"flow3d legalizes random designs" ~count:40
    QCheck.(int_bound 100_000)
    (fun seed ->
      let d = Fixtures.random ~with_macros:(seed mod 2 = 0) seed in
      let r = L.Flow3d.legalize d in
      (Legality.check d r.L.Flow3d.placement).Legality.n_violations = 0)

let prop_bonn_legal_on_random_designs =
  QCheck.Test.make ~name:"bonn config legalizes random designs" ~count:20
    QCheck.(int_bound 100_000)
    (fun seed ->
      let d = Fixtures.random seed in
      let r = L.Flow3d.legalize ~cfg:L.Config.bonn_emulation d in
      (Legality.check d r.L.Flow3d.placement).Legality.n_violations = 0)

let prop_exhaustive_not_worse_avg =
  QCheck.Test.make ~name:"alpha pruning close to exhaustive quality" ~count:10
    QCheck.(int_bound 10_000)
    (fun seed ->
      let d = Fixtures.random ~n:80 seed in
      let pruned = (L.Flow3d.legalize d).L.Flow3d.placement in
      let full =
        (L.Flow3d.legalize ~cfg:{ cfg with L.Config.exhaustive = true } d)
          .L.Flow3d.placement
      in
      let a = (Displacement.summary d pruned).Displacement.avg_norm in
      let b = (Displacement.summary d full).Displacement.avg_norm in
      (* pruning may lose a little, but not more than 35% on these sizes *)
      a <= (b *. 1.35) +. 0.2)

let suite =
  [
    Alcotest.test_case "config presets" `Quick test_config_presets;
    Alcotest.test_case "select horizontal exact" `Quick test_select_horizontal_exact;
    Alcotest.test_case "select whole covers need" `Quick test_select_whole_covers_need;
    Alcotest.test_case "select need > used" `Quick test_select_need_exceeds_used;
    Alcotest.test_case "augment resolves overflow" `Quick test_augment_resolves_overflow;
    Alcotest.test_case "augment none without supply" `Quick test_augment_none_on_balanced;
    Alcotest.test_case "flow3d cluster legal" `Quick test_flow3d_legalizes_cluster;
    Alcotest.test_case "flow3d macro legal" `Quick test_flow3d_with_macro;
    Alcotest.test_case "no_d2d keeps dies" `Quick test_no_d2d_keeps_dies;
    Alcotest.test_case "post-opt victims" `Quick test_post_opt_victim_selection;
    Alcotest.test_case "post-opt threshold floor" `Quick test_post_opt_threshold_floor;
    Alcotest.test_case "ECO incremental" `Quick test_legalize_from_eco;
    QCheck_alcotest.to_alcotest prop_legal_on_random_designs;
    QCheck_alcotest.to_alcotest prop_bonn_legal_on_random_designs;
    QCheck_alcotest.to_alcotest prop_exhaustive_not_worse_avg;
  ]
