let () =
  Alcotest.run "tdflow"
    [
      ("util", Test_util.suite);
      ("par", Test_par.suite);
      ("telemetry", Test_telemetry.suite);
      ("geometry", Test_geometry.suite);
      ("netlist", Test_netlist.suite);
      ("grid", Test_grid.suite);
      ("flow", Test_flow.suite);
      ("place_row", Test_place_row.suite);
      ("legalizer", Test_legalizer.suite);
      ("baselines", Test_baselines.suite);
      ("metrics", Test_metrics.suite);
      ("benchgen", Test_benchgen.suite);
      ("io", Test_io.suite);
      ("def_lef", Test_def_lef.suite);
      ("bonding", Test_bonding.suite);
      ("contest", Test_contest.suite);
      ("refine", Test_refine.suite);
      ("placer", Test_placer.suite);
      ("experiments", Test_experiments.suite);
      ("adversarial", Test_adversarial.suite);
      ("robust", Test_robust.suite);
      ("tile", Test_tile.suite);
      ("determinism", Test_determinism.suite);
      ("scale", Test_scale.suite);
      ("integration", Test_integration.suite);
      ("incremental", Test_incremental.suite);
      ("server", Test_server.suite);
      ("journal", Test_journal.suite);
      ("gate", Test_gate.suite);
    ]
