module T = Tdf_telemetry
module Json = Tdf_telemetry.Json
module Aggregate = Tdf_telemetry.Aggregate
module Jsonl = Tdf_telemetry.Jsonl
module Trace = Tdf_telemetry.Trace

(* Every test resets the global registry on both paths so a failure cannot
   leak an installed sink into unrelated suites. *)
let isolated f () = Fun.protect f ~finally:T.reset

(* ---- core span / counter semantics -------------------------------- *)

let spans_of evs =
  List.filter_map
    (function T.Span { name; depth; start_ns; dur_ns } -> Some (name, depth, start_ns, dur_ns) | _ -> None)
    evs

let test_span_nesting_ordering () =
  let j = Jsonl.create () in
  T.with_sink (Jsonl.sink j) (fun () ->
      T.span "outer" (fun () ->
          T.span "inner_a" (fun () -> ignore (Sys.opaque_identity (ref 0)));
          T.span "inner_b" (fun () -> ())));
  let evs =
    match Jsonl.parse (Jsonl.contents j) with
    | Ok evs -> evs
    | Error e -> Alcotest.failf "parse: %s" e
  in
  match spans_of evs with
  | [ (na, da, sa, la); (nb, db, sb, _); (no, dp, so, lo) ] ->
    Alcotest.(check (list string))
      "post-order close" [ "inner_a"; "inner_b"; "outer" ] [ na; nb; no ];
    Alcotest.(check int) "inner_a depth" 1 da;
    Alcotest.(check int) "inner_b depth" 1 db;
    Alcotest.(check int) "outer depth" 0 dp;
    Alcotest.(check bool) "children start after parent" true
      (Int64.compare sa so >= 0 && Int64.compare sb so >= 0);
    Alcotest.(check bool) "inner_a nested in outer" true
      (Int64.compare (Int64.add sa la) (Int64.add so lo) <= 0);
    Alcotest.(check bool) "inner_b starts after inner_a ends" true
      (Int64.compare sb (Int64.add sa la) >= 0)
  | spans -> Alcotest.failf "expected 3 spans, got %d" (List.length spans)

let test_span_returns_and_raises () =
  let agg = Aggregate.create () in
  T.with_sink (Aggregate.sink agg) (fun () ->
      Alcotest.(check int) "span returns f's value" 42 (T.span "ret" (fun () -> 42));
      (try T.span "boom" (fun () -> failwith "x") with Failure _ -> ());
      Alcotest.(check int) "raising span still recorded" 1
        (Aggregate.span_count agg "boom"));
  Alcotest.(check int) "ret recorded" 1 (Aggregate.span_count agg "ret")

let test_counter_totals () =
  let agg = Aggregate.create () in
  T.with_sink (Aggregate.sink agg) (fun () ->
      T.count "edges" 3;
      T.count "edges" 4;
      T.incr "edges";
      T.incr "other");
  Alcotest.(check int) "summed" 8 (Aggregate.counter_total agg "edges");
  Alcotest.(check int) "other" 1 (Aggregate.counter_total agg "other");
  Alcotest.(check int) "unseen is 0" 0 (Aggregate.counter_total agg "nope")

let test_disabled_and_null_inert () =
  T.reset ();
  Alcotest.(check bool) "disabled by default" false (T.enabled ());
  Alcotest.(check int) "span passes through when disabled" 7
    (T.span "ghost" (fun () -> 7));
  T.count "ghost" 5;
  T.observe "ghost" 1.0;
  (* The null sink turns probes on but discards everything, and behavior
     under it is unchanged. *)
  let r = T.with_sink T.null (fun () ->
      Alcotest.(check bool) "enabled under null" true (T.enabled ());
      T.count "ghost" 5;
      T.span "ghost" (fun () -> 11))
  in
  Alcotest.(check int) "value preserved under null" 11 r;
  Alcotest.(check bool) "disabled after with_sink" false (T.enabled ());
  (* Nothing leaked anywhere observable: a fresh aggregate sees no ghosts. *)
  let agg = Aggregate.create () in
  T.with_sink (Aggregate.sink agg) (fun () -> ());
  Alcotest.(check int) "no ghost spans" 0 (Aggregate.span_count agg "ghost");
  Alcotest.(check int) "no ghost counters" 0 (Aggregate.counter_total agg "ghost")

let test_multiple_sinks () =
  let a1 = Aggregate.create () and a2 = Aggregate.create () in
  T.install (Aggregate.sink a1);
  T.install (Aggregate.sink a2);
  T.incr "x";
  T.reset ();
  Alcotest.(check int) "sink 1 saw it" 1 (Aggregate.counter_total a1 "x");
  Alcotest.(check int) "sink 2 saw it" 1 (Aggregate.counter_total a2 "x");
  T.incr "x";
  Alcotest.(check int) "nothing after reset" 1 (Aggregate.counter_total a1 "x")

(* ---- JSONL round-trip ---------------------------------------------- *)

let test_jsonl_round_trip () =
  let j = Jsonl.create () in
  let recorded = ref [] in
  let recorder ev = recorded := ev :: !recorded in
  T.install (Jsonl.sink j);
  T.install recorder;
  T.span "s\"needs escaping\\" (fun () -> T.count "c" 3);
  T.observe "h" 2.5;
  T.observe "h" 0.125;
  T.reset ();
  let expected = List.rev !recorded in
  (match Jsonl.parse (Jsonl.contents j) with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok evs ->
    Alcotest.(check int) "event count" (List.length expected) (List.length evs);
    Alcotest.(check bool) "events round-trip exactly" true (evs = expected));
  (* serialize → parse → serialize is a fixed point *)
  let reserialized =
    match Jsonl.parse (Jsonl.contents j) with
    | Ok evs ->
      String.concat ""
        (List.map (fun e -> Json.to_string (Jsonl.event_to_json e) ^ "\n") evs)
    | Error e -> Alcotest.failf "reparse failed: %s" e
  in
  Alcotest.(check string) "fixed point" (Jsonl.contents j) reserialized

(* ---- Chrome trace export ------------------------------------------- *)

let test_trace_golden () =
  let tr = Trace.create () in
  T.with_sink (Trace.sink tr) (fun () ->
      T.span "phase.flow" (fun () ->
          T.span "phase.augment" (fun () -> ());
          T.count "pops" 12);
      T.observe "runtime_s" 0.5);
  let s = Trace.to_string tr in
  let json =
    match Json.of_string s with
    | Ok j -> j
    | Error e -> Alcotest.failf "trace is not well-formed JSON: %s" e
  in
  let events =
    match Option.bind (Json.member "traceEvents" json) Json.to_list with
    | Some l -> l
    | None -> Alcotest.fail "no traceEvents array"
  in
  let field k j = Option.bind (Json.member k j) Json.to_str in
  let names = List.filter_map (field "name") events in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " present") true (List.mem n names))
    [ "process_name"; "phase.flow"; "phase.augment"; "pops"; "runtime_s" ];
  (* span events are complete ("X") events with numeric ts/dur *)
  let xs =
    List.filter (fun e -> field "ph" e = Some "X") events
  in
  Alcotest.(check int) "two X events" 2 (List.length xs);
  List.iter
    (fun e ->
      let num k = Option.bind (Json.member k e) Json.to_float in
      Alcotest.(check bool) "ts >= 0" true (Option.get (num "ts") >= 0.);
      Alcotest.(check bool) "dur >= 0" true (Option.get (num "dur") >= 0.))
    xs;
  (* the nested span closes first, so it serializes before its parent *)
  (match List.filter_map (field "name") xs with
  | [ a; b ] ->
    Alcotest.(check string) "child first" "phase.augment" a;
    Alcotest.(check string) "parent second" "phase.flow" b
  | _ -> Alcotest.fail "expected exactly two span names");
  (* counter event carries the cumulative value *)
  let c = List.find (fun e -> field "ph" e = Some "C" && field "name" e = Some "pops") events in
  let v =
    Option.bind (Json.member "args" c) (fun a ->
        Option.bind (Json.member "value" a) Json.to_int)
  in
  Alcotest.(check (option int)) "cumulative counter" (Some 12) v

(* ---- aggregate rendering / JSON ------------------------------------ *)

let test_aggregate_summary () =
  let agg = Aggregate.create () in
  T.with_sink (Aggregate.sink agg) (fun () ->
      for _ = 1 to 10 do
        T.span "work" (fun () -> ignore (Sys.opaque_identity (Array.make 64 0)))
      done;
      T.count "items" 100;
      T.observe "disp" 1.5;
      T.observe "disp" 2.5);
  let row = Aggregate.span_row agg "work" in
  Alcotest.(check int) "count" 10 row.Aggregate.count;
  Alcotest.(check bool) "total >= mean" true (row.Aggregate.total_ms >= row.Aggregate.mean_ms);
  Alcotest.(check bool) "p99 >= p50" true (row.Aggregate.p99_ms >= row.Aggregate.p50_ms);
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
    at 0
  in
  let rendered = Aggregate.render agg in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " in table") true (contains rendered needle))
    [ "work"; "items"; "disp"; "p95" ];
  let json = Aggregate.to_json agg in
  let count =
    Option.bind (Json.member "spans" json) (fun s ->
        Option.bind (Json.member "work" s) (fun w ->
            Option.bind (Json.member "count" w) Json.to_int))
  in
  Alcotest.(check (option int)) "json span count" (Some 10) count;
  let hist_count =
    Option.bind (Json.member "histograms" json) (fun h ->
        Option.bind (Json.member "disp" h) (fun d ->
            Option.bind (Json.member "count" d) Json.to_int))
  in
  Alcotest.(check (option int)) "json histogram count" (Some 2) hist_count

(* ---- Json mini-library --------------------------------------------- *)

let test_json_round_trip () =
  let v =
    Json.Obj
      [
        ("s", Json.String "a \"quoted\" \\ line\nwith\ttabs");
        ("i", Json.Int (-42));
        ("f", Json.Float 1.5);
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.List []; Json.Obj [] ]);
      ]
  in
  (match Json.of_string (Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "round trip" true (v = v')
  | Error e -> Alcotest.failf "round trip failed: %s" e);
  (match Json.of_string "{\"a\": [1, 2.5, \"x\", null, true]}" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "vanilla parse failed: %s" e);
  List.iter
    (fun bad ->
      match Json.of_string bad with
      | Ok _ -> Alcotest.failf "accepted bad JSON %S" bad
      | Error _ -> ())
    [ "{"; "[1,]"; "\"unterminated"; "{\"a\" 1}"; "nulll"; "" ]

(* ---- end-to-end: instrumented legalizer ----------------------------- *)

let test_flow3d_instrumented () =
  let design = Fixtures.random 3 in
  (* telemetry must not perturb results: same placement with and without *)
  let base = (Tdf_legalizer.Flow3d.legalize design).Tdf_legalizer.Flow3d.placement in
  let agg = Aggregate.create () in
  let p =
    T.with_sink (Aggregate.sink agg) (fun () ->
        (Tdf_legalizer.Flow3d.legalize design).Tdf_legalizer.Flow3d.placement)
  in
  Alcotest.(check bool) "identical placement under telemetry" true
    (base.Tdf_netlist.Placement.x = p.Tdf_netlist.Placement.x
    && base.Tdf_netlist.Placement.y = p.Tdf_netlist.Placement.y
    && base.Tdf_netlist.Placement.die = p.Tdf_netlist.Placement.die);
  Alcotest.(check int) "one legalize span" 1
    (Aggregate.span_count agg "flow3d.legalize");
  Alcotest.(check bool) "flow_pass recorded" true
    (Aggregate.span_count agg "flow3d.flow_pass" >= 1);
  Alcotest.(check bool) "place_row recorded" true
    (Aggregate.span_count agg "flow3d.place_row" >= 1);
  Alcotest.(check bool) "augmentation counter present" true
    (List.mem "flow3d.augmentations" (Aggregate.counter_names agg))

let test_mcmf_instrumented () =
  let agg = Aggregate.create () in
  T.with_sink (Aggregate.sink agg) (fun () ->
      let g = Tdf_flow.Mcmf.create 4 in
      ignore (Tdf_flow.Mcmf.add_edge g ~src:0 ~dst:1 ~cap:2 ~cost:1);
      ignore (Tdf_flow.Mcmf.add_edge g ~src:1 ~dst:3 ~cap:2 ~cost:1);
      ignore (Tdf_flow.Mcmf.add_edge g ~src:0 ~dst:2 ~cap:1 ~cost:3);
      ignore (Tdf_flow.Mcmf.add_edge g ~src:2 ~dst:3 ~cap:1 ~cost:3);
      let flow, _cost = Tdf_flow.Mcmf.min_cost_flow g ~source:0 ~sink:3 () in
      Alcotest.(check int) "flow" 3 flow);
  Alcotest.(check int) "solver span" 1
    (Aggregate.span_count agg "mcmf.min_cost_flow");
  Alcotest.(check bool) "augmentations counted" true
    (Aggregate.counter_total agg "mcmf.augmentations" >= 2);
  Alcotest.(check bool) "pops counted" true
    (Aggregate.counter_total agg "mcmf.dijkstra_pops" > 0)

(* ---- domain safety ------------------------------------------------- *)

(* Raw concurrent emission (no pool, no capture): N domains hammering one
   counter.  Dispatch serializes sink calls under the registry mutex, so
   the aggregate must count every increment — a lost update here means a
   data race in the core. *)
let test_concurrent_counters_exact () =
  let domains = 4 and per_domain = 10_000 in
  let agg = Aggregate.create () in
  T.with_sink (Aggregate.sink agg) (fun () ->
      let spawned =
        Array.init domains (fun _ ->
            Domain.spawn (fun () ->
                for _ = 1 to per_domain do
                  T.incr "conc.hits"
                done))
      in
      Array.iter Domain.join spawned);
  Alcotest.(check int)
    "no lost increments" (domains * per_domain)
    (Aggregate.counter_total agg "conc.hits")

let test_concurrent_jsonl_lines_atomic () =
  (* Concurrent emitters into a JSONL sink: every line must be one intact
     event (interleaved writes would corrupt the JSON), and per-domain
     event counts must all arrive. *)
  let domains = 4 and per_domain = 2_000 in
  let j = Jsonl.create () in
  T.with_sink (Jsonl.sink j) (fun () ->
      let spawned =
        Array.init domains (fun d ->
            Domain.spawn (fun () ->
                let name = Printf.sprintf "conc.d%d" d in
                for i = 1 to per_domain do
                  T.count name (i land 1)
                done))
      in
      Array.iter Domain.join spawned);
  match Jsonl.parse (Jsonl.contents j) with
  | Error e -> Alcotest.failf "interleaved/corrupt JSONL: %s" e
  | Ok evs ->
    Alcotest.(check int) "all events present" (domains * per_domain)
      (List.length evs);
    for d = 0 to domains - 1 do
      let name = Printf.sprintf "conc.d%d" d in
      let n =
        List.length
          (List.filter
             (function T.Count { name = n; _ } -> n = name | _ -> false)
             evs)
      in
      Alcotest.(check int) (name ^ " count") per_domain n
    done

let test_concurrent_spans_per_domain_depth () =
  (* Span depth is domain-local: concurrent spans from different domains
     keep their own nesting (depths 0/1), never each other's. *)
  let agg = Aggregate.create () in
  T.with_sink (Aggregate.sink agg) (fun () ->
      let spawned =
        Array.init 4 (fun d ->
            Domain.spawn (fun () ->
                let name = Printf.sprintf "conc.span%d" d in
                for _ = 1 to 500 do
                  T.span name (fun () -> T.span (name ^ ".in") (fun () -> ()))
                done))
      in
      Array.iter Domain.join spawned);
  for d = 0 to 3 do
    let name = Printf.sprintf "conc.span%d" d in
    Alcotest.(check int) (name ^ " outer") 500 (Aggregate.span_count agg name);
    Alcotest.(check int)
      (name ^ " inner") 500
      (Aggregate.span_count agg (name ^ ".in"))
  done

let suite =
  [
    Alcotest.test_case "span nesting and ordering" `Quick
      (isolated test_span_nesting_ordering);
    Alcotest.test_case "span returns and raises" `Quick
      (isolated test_span_returns_and_raises);
    Alcotest.test_case "counter totals" `Quick (isolated test_counter_totals);
    Alcotest.test_case "disabled and null sink inert" `Quick
      (isolated test_disabled_and_null_inert);
    Alcotest.test_case "multiple sinks" `Quick (isolated test_multiple_sinks);
    Alcotest.test_case "jsonl round trip" `Quick (isolated test_jsonl_round_trip);
    Alcotest.test_case "chrome trace golden" `Quick (isolated test_trace_golden);
    Alcotest.test_case "aggregate summary" `Quick (isolated test_aggregate_summary);
    Alcotest.test_case "json round trip" `Quick (isolated test_json_round_trip);
    Alcotest.test_case "flow3d instrumented" `Quick
      (isolated test_flow3d_instrumented);
    Alcotest.test_case "mcmf instrumented" `Quick (isolated test_mcmf_instrumented);
    Alcotest.test_case "concurrent counters exact" `Quick
      (isolated test_concurrent_counters_exact);
    Alcotest.test_case "concurrent jsonl lines atomic" `Quick
      (isolated test_concurrent_jsonl_lines_atomic);
    Alcotest.test_case "concurrent spans per-domain depth" `Quick
      (isolated test_concurrent_spans_per_domain_depth);
  ]
