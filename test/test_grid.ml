module G = Tdf_grid.Grid
module Design = Tdf_netlist.Design
module Placement = Tdf_netlist.Placement

let build_empty ?(bin_width = 20) design = G.build design ~bin_width

let test_structure_no_macros () =
  let d = Fixtures.clustered () in
  let g = build_empty d in
  (* 2 dies × 4 rows × 1 segment each *)
  Alcotest.(check int) "8 segments" 8 (Array.length g.G.segments);
  Array.iter
    (fun (s : G.segment) ->
      Alcotest.(check int) "segment spans die" 100 (s.G.s_hi - s.G.s_lo);
      let total =
        Array.fold_left (fun acc bid -> acc + g.G.bins.(bid).G.width) 0 s.G.s_bins
      in
      Alcotest.(check int) "bin widths sum to segment" 100 total)
    g.G.segments

let test_structure_macro_split () =
  let d = Fixtures.with_macro () in
  let g = build_empty d in
  (* die 0: rows 1 and 2 are split by the macro (x 40-60, y 10-30). *)
  let segs_die0_row1 =
    Array.to_list g.G.segments
    |> List.filter (fun s -> s.G.s_die = 0 && s.G.s_row = 1)
  in
  Alcotest.(check int) "row 1 split in two" 2 (List.length segs_die0_row1);
  (match segs_die0_row1 with
  | [ a; b ] ->
    Alcotest.(check (pair int int)) "left part" (0, 40) (a.G.s_lo, a.G.s_hi);
    Alcotest.(check (pair int int)) "right part" (60, 100) (b.G.s_lo, b.G.s_hi)
  | _ -> Alcotest.fail "unexpected segments");
  let segs_die0_row0 =
    Array.to_list g.G.segments
    |> List.filter (fun s -> s.G.s_die = 0 && s.G.s_row = 0)
  in
  Alcotest.(check int) "row 0 unsplit" 1 (List.length segs_die0_row0)

let test_segments_of_row_shared () =
  let d = Fixtures.with_macro () in
  let segs = G.segments_of_row d 0 1 in
  Alcotest.(check int) "two intervals" 2 (List.length segs);
  let segs = G.segments_of_row d 1 1 in
  Alcotest.(check int) "top die unsplit" 1 (List.length segs)

let edge_kinds g bid =
  Array.to_list g.G.edges.(bid) |> List.map (fun e -> e.G.kind)

let test_edges_sanity () =
  let d = Fixtures.clustered () in
  let g = build_empty d in
  Array.iter
    (fun (b : G.bin) ->
      Array.iter
        (fun (e : G.edge) ->
          let v = g.G.bins.(e.G.dst) in
          match e.G.kind with
          | G.Horizontal ->
            Alcotest.(check int) "same segment" b.G.seg v.G.seg;
            Alcotest.(check bool) "adjacent in x" true
              (v.G.x = b.G.x + b.G.width || b.G.x = v.G.x + v.G.width)
          | G.Vertical ->
            Alcotest.(check int) "same die" b.G.die v.G.die;
            Alcotest.(check int) "adjacent row" 1 (abs (b.G.row - v.G.row))
          | G.D2d ->
            Alcotest.(check int) "adjacent die" 1 (abs (b.G.die - v.G.die)))
        g.G.edges.(b.G.id))
    g.G.bins;
  (* every bin of this two-die design has at least one D2D edge *)
  Array.iter
    (fun (b : G.bin) ->
      Alcotest.(check bool) "has D2D" true
        (List.mem G.D2d (edge_kinds g b.G.id)))
    g.G.bins

let test_edges_symmetric () =
  let d = Fixtures.with_macro () in
  let g = build_empty d in
  Array.iter
    (fun (b : G.bin) ->
      Array.iter
        (fun (e : G.edge) ->
          let back =
            Array.exists (fun (e' : G.edge) -> e'.G.dst = b.G.id) g.G.edges.(e.G.dst)
          in
          Alcotest.(check bool) "symmetric" true back)
        g.G.edges.(b.G.id))
    g.G.bins

let test_assign_initial_invariants () =
  let d = Fixtures.clustered () in
  let g = build_empty d in
  G.assign_initial_exn g (Placement.initial d);
  (match G.check_invariants g with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* all 8 cells (6 wide) at one spot: total 48 > bin 20 -> overflow *)
  Alcotest.(check bool) "overflow exists" true (G.total_overflow g > 0.)

let test_supply_demand_math () =
  let d = Fixtures.clustered () in
  let g = build_empty d in
  G.assign_initial_exn g (Placement.initial d);
  Array.iter
    (fun (b : G.bin) ->
      let sup = G.supply b and dem = G.demand b in
      Alcotest.(check bool) "not both positive" true (sup = 0. || dem = 0.);
      Alcotest.(check (float 1e-6)) "sup-dem = used-cap"
        (b.G.used -. float_of_int b.G.width)
        (sup -. dem))
    g.G.bins

let test_place_remove_roundtrip () =
  let d = Fixtures.clustered () in
  let g = build_empty d in
  G.place_cell_exn g ~cell:0 ~die:0 ~x:50 ~y:11;
  Alcotest.(check bool) "assigned" true (G.segment_of_cell g 0 >= 0);
  let used_before = g.G.die_used.(0) in
  Alcotest.(check bool) "die used grows" true (used_before > 0.);
  G.remove_cell g ~cell:0;
  Alcotest.(check int) "unassigned" (-1) (G.segment_of_cell g 0);
  Alcotest.(check (float 1e-6)) "die used restored" 0. g.G.die_used.(0);
  match G.check_invariants g with Ok () -> () | Error e -> Alcotest.fail e

let test_fractional_assignment_spans_bins () =
  let d = Fixtures.clustered () in
  let g = G.build d ~bin_width:5 in
  (* width-6 cell at x=48 must span two 5-wide bins *)
  G.place_cell_exn g ~cell:0 ~die:0 ~x:48 ~y:11;
  let frags = g.G.cell_frags.(0) in
  Alcotest.(check bool) "at least 2 fragments" true (List.length frags >= 2);
  let total = List.fold_left (fun acc (_, r) -> acc +. r) 0. frags in
  Alcotest.(check (float 1e-9)) "fractions sum to 1" 1.0 total

let test_move_fraction () =
  let d = Fixtures.clustered () in
  let g = build_empty d in
  G.place_cell_exn g ~cell:0 ~die:0 ~x:10 ~y:1;
  let sid = G.segment_of_cell g 0 in
  let s = g.G.segments.(sid) in
  let b0 = g.G.bins.(s.G.s_bins.(0)) and b1 = g.G.bins.(s.G.s_bins.(1)) in
  G.move_fraction g ~cell:0 ~src:b0 ~dst:b1 ~rho:0.5;
  Alcotest.(check (float 1e-9)) "half here" 0.5 (G.frag_rho_in g ~cell:0 b0);
  Alcotest.(check (float 1e-9)) "half there" 0.5 (G.frag_rho_in g ~cell:0 b1);
  (match G.check_invariants g with Ok () -> () | Error e -> Alcotest.fail e);
  (* clipping: asking for more than available moves the rest *)
  G.move_fraction g ~cell:0 ~src:b0 ~dst:b1 ~rho:5.0;
  Alcotest.(check (float 1e-9)) "all there" 1.0 (G.frag_rho_in g ~cell:0 b1)

let test_move_whole_changes_width () =
  let dies = Fixtures.two_dies () in
  let cells = [| Fixtures.cell ~id:0 ~w0:4 ~w1:8 ~x:10 ~y:1 ~z:0.0 () |] in
  let d = Design.make ~name:"w" ~dies ~cells () in
  let g = build_empty d in
  G.place_cell_exn g ~cell:0 ~die:0 ~x:10 ~y:1;
  Alcotest.(check (float 1e-6)) "uses w0" 4. g.G.die_used.(0);
  (* move to some bin on die 1 *)
  let dst =
    Array.to_list g.G.bins |> List.find (fun (b : G.bin) -> b.G.die = 1)
  in
  G.move_whole g ~cell:0 ~dst;
  Alcotest.(check (float 1e-6)) "die0 empty" 0. g.G.die_used.(0);
  Alcotest.(check (float 1e-6)) "uses w1 on die1" 8. g.G.die_used.(1);
  match G.check_invariants g with Ok () -> () | Error e -> Alcotest.fail e

let test_est_disp () =
  let d = Fixtures.clustered () in
  let g = build_empty d in
  (* cell 0 gp=(50,11); a bin at row 1 (y=10) containing x=50 costs |y-11| *)
  let b =
    Array.to_list g.G.bins
    |> List.find (fun (b : G.bin) ->
           b.G.die = 0 && b.G.y = 10 && b.G.x <= 50 && 50 < b.G.x + b.G.width)
  in
  Alcotest.(check int) "dy only" 1 (G.est_disp g ~cell:0 b);
  let far =
    Array.to_list g.G.bins
    |> List.find (fun (b : G.bin) -> b.G.die = 0 && b.G.y = 30 && b.G.x = 0)
  in
  (* clamp x to bin span: nearest x in [0,20-6] is 14 -> dx=36, dy=19 *)
  Alcotest.(check int) "clamped" (36 + 19) (G.est_disp g ~cell:0 far)

let test_find_slot_fits () =
  let d = Fixtures.with_macro () in
  let g = build_empty d in
  (* ask for a slot inside the macro's x-range on die 0: must land in a
     segment, never inside the blockage *)
  match G.find_slot g ~die:0 ~x:45 ~y:15 ~w:5 with
  | Some (sid, x) ->
    let s = g.G.segments.(sid) in
    Alcotest.(check bool) "inside segment" true (s.G.s_lo <= x && x + 5 <= s.G.s_hi)
  | None -> Alcotest.fail "expected a slot"

let test_find_slot_too_wide () =
  let d = Fixtures.clustered () in
  let g = build_empty d in
  Alcotest.(check bool) "nothing fits width 1000" true
    (G.find_slot g ~die:0 ~x:0 ~y:0 ~w:1000 = None)

let prop_random_ops_keep_invariants =
  QCheck.Test.make ~name:"random place/move/remove keep invariants" ~count:60
    QCheck.(int_bound 10_000)
    (fun seed ->
      let d = Fixtures.random seed in
      let g = G.build d ~bin_width:15 in
      G.assign_initial_exn g (Placement.initial d);
      let rng = Tdf_util.Prng.create (seed + 1) in
      for _ = 1 to 100 do
        let cell = Tdf_util.Prng.int rng (Design.n_cells d) in
        match Tdf_util.Prng.int rng 3 with
        | 0 ->
          (* whole-cell move to a random bin *)
          let b = g.G.bins.(Tdf_util.Prng.int rng (G.n_bins g)) in
          G.move_whole g ~cell ~dst:b
        | 1 ->
          (* fractional shuffle within segment when possible *)
          let sid = G.segment_of_cell g cell in
          if sid >= 0 then begin
            let s = g.G.segments.(sid) in
            if Array.length s.G.s_bins >= 2 then begin
              let i = Tdf_util.Prng.int rng (Array.length s.G.s_bins - 1) in
              let b0 = g.G.bins.(s.G.s_bins.(i)) in
              let b1 = g.G.bins.(s.G.s_bins.(i + 1)) in
              G.move_fraction g ~cell ~src:b0 ~dst:b1
                ~rho:(Tdf_util.Prng.float rng 1.0)
            end
          end
        | _ ->
          G.remove_cell g ~cell;
          G.place_cell_exn g ~cell ~die:(Tdf_util.Prng.int rng 2)
            ~x:(Tdf_util.Prng.int rng 120)
            ~y:(Tdf_util.Prng.int rng 50)
      done;
      match G.check_invariants g with Ok () -> true | Error _ -> false)

(* reset_to must be indistinguishable from throwing the grid away: a grid
   that already carries a different assignment, reset to a target array,
   matches a freshly built grid given the same targets bin-for-bin (same
   fragments, same [used]), and still passes the structural invariants. *)
let prop_reset_to_roundtrip =
  Props.test "reset_to equals fresh build+place" ~count:40
    Props.(pair (int_range 0 1_000_000) (int_range 8 30))
    (fun (seed, bin_width) ->
      let d = Fixtures.random ~n:40 seed in
      let n = Design.n_cells d in
      let rng = Tdf_util.Prng.create (seed + 1) in
      let targets =
        Array.init n (fun _ ->
            ( Tdf_util.Prng.int rng 120,
              Tdf_util.Prng.int rng 50,
              Tdf_util.Prng.int rng 2 ))
      in
      let fresh = G.build d ~bin_width in
      let fresh_ok =
        Array.for_all (fun x -> x)
          (Array.mapi
             (fun c (x, y, die) ->
               G.place_cell fresh ~cell:c ~die ~x ~y = Ok ())
             targets)
      in
      let g = G.build d ~bin_width in
      G.assign_initial_exn g (Placement.initial d);
      match G.reset_to g targets with
      | Error _ -> not fresh_ok
      | Ok () ->
        fresh_ok
        && G.check_invariants g = Ok ()
        && Array.for_all2
             (fun (a : G.bin) (b : G.bin) ->
               a.G.used = b.G.used
               && List.map (fun (f : G.frag) -> (f.G.cell, f.G.rho)) a.G.frags
                  = List.map (fun (f : G.frag) -> (f.G.cell, f.G.rho)) b.G.frags)
             fresh.G.bins g.G.bins)

let suite =
  [
    Alcotest.test_case "structure without macros" `Quick test_structure_no_macros;
    Alcotest.test_case "structure macro split" `Quick test_structure_macro_split;
    Alcotest.test_case "segments_of_row" `Quick test_segments_of_row_shared;
    Alcotest.test_case "edge kinds sane" `Quick test_edges_sanity;
    Alcotest.test_case "edges symmetric" `Quick test_edges_symmetric;
    Alcotest.test_case "assign initial invariants" `Quick test_assign_initial_invariants;
    Alcotest.test_case "supply/demand math" `Quick test_supply_demand_math;
    Alcotest.test_case "place/remove roundtrip" `Quick test_place_remove_roundtrip;
    Alcotest.test_case "fractional assignment" `Quick test_fractional_assignment_spans_bins;
    Alcotest.test_case "move fraction" `Quick test_move_fraction;
    Alcotest.test_case "move whole across dies" `Quick test_move_whole_changes_width;
    Alcotest.test_case "est_disp" `Quick test_est_disp;
    Alcotest.test_case "find_slot avoids macro" `Quick test_find_slot_fits;
    Alcotest.test_case "find_slot too wide" `Quick test_find_slot_too_wide;
    QCheck_alcotest.to_alcotest prop_random_ops_keep_invariants;
    prop_reset_to_roundtrip;
  ]
