module M = Tdf_flow.Mcmf

let test_single_edge () =
  let g = M.create 2 in
  let e = M.add_edge g ~src:0 ~dst:1 ~cap:5 ~cost:3 in
  let flow, cost = M.min_cost_flow g ~source:0 ~sink:1 () in
  Alcotest.(check int) "flow" 5 flow;
  Alcotest.(check int) "cost" 15 cost;
  Alcotest.(check int) "edge flow" 5 (M.flow_on g e)

let test_two_paths_prefers_cheap () =
  (* 0->1->3 cost 2, 0->2->3 cost 10; caps 1 each; push 2 units *)
  let g = M.create 4 in
  ignore (M.add_edge g ~src:0 ~dst:1 ~cap:1 ~cost:1);
  ignore (M.add_edge g ~src:1 ~dst:3 ~cap:1 ~cost:1);
  ignore (M.add_edge g ~src:0 ~dst:2 ~cap:1 ~cost:5);
  ignore (M.add_edge g ~src:2 ~dst:3 ~cap:1 ~cost:5);
  let flow, cost = M.min_cost_flow g ~source:0 ~sink:3 () in
  Alcotest.(check int) "flow" 2 flow;
  Alcotest.(check int) "cost" 12 cost

let test_max_flow_limit () =
  let g = M.create 2 in
  ignore (M.add_edge g ~src:0 ~dst:1 ~cap:10 ~cost:1);
  let flow, cost = M.min_cost_flow g ~source:0 ~sink:1 ~max_flow:4 () in
  Alcotest.(check int) "limited flow" 4 flow;
  Alcotest.(check int) "cost" 4 cost

let test_rerouting_via_residual () =
  (* Classic case where the second augmentation must push back on the
     first path's residual edge. *)
  let g = M.create 4 in
  ignore (M.add_edge g ~src:0 ~dst:1 ~cap:1 ~cost:1);
  ignore (M.add_edge g ~src:0 ~dst:2 ~cap:1 ~cost:2);
  ignore (M.add_edge g ~src:1 ~dst:2 ~cap:1 ~cost:(-2));
  ignore (M.add_edge g ~src:1 ~dst:3 ~cap:1 ~cost:4);
  ignore (M.add_edge g ~src:2 ~dst:3 ~cap:2 ~cost:1);
  let flow, cost = M.min_cost_flow g ~source:0 ~sink:3 () in
  Alcotest.(check int) "max flow 2" 2 flow;
  (* best: 0-1-2-3 (1-2+1=0) and 0-2-3 (2+1=3) => 3 *)
  Alcotest.(check int) "optimal cost" 3 cost

let test_negative_edge_costs () =
  let g = M.create 3 in
  ignore (M.add_edge g ~src:0 ~dst:1 ~cap:2 ~cost:(-5));
  ignore (M.add_edge g ~src:1 ~dst:2 ~cap:2 ~cost:3);
  let flow, cost = M.min_cost_flow g ~source:0 ~sink:2 () in
  Alcotest.(check int) "flow" 2 flow;
  Alcotest.(check int) "cost" (-4) cost

let test_disconnected () =
  let g = M.create 3 in
  ignore (M.add_edge g ~src:0 ~dst:1 ~cap:1 ~cost:1);
  let flow, cost = M.min_cost_flow g ~source:0 ~sink:2 () in
  Alcotest.(check int) "no flow" 0 flow;
  Alcotest.(check int) "no cost" 0 cost

(* Brute-force reference: enumerate all integral flows on tiny graphs by
   trying all combinations of per-edge flows and checking conservation. *)
let brute_force_min_cost n edges ~source ~sink =
  let ne = List.length edges in
  let best_for_flow = Hashtbl.create 16 in
  let edges = Array.of_list edges in
  let assignment = Array.make ne 0 in
  let rec enumerate i =
    if i = ne then begin
      let net = Array.make n 0 in
      let cost = ref 0 in
      Array.iteri
        (fun j f ->
          let src, dst, _, c = edges.(j) in
          net.(src) <- net.(src) - f;
          net.(dst) <- net.(dst) + f;
          cost := !cost + (f * c))
        assignment;
      let ok = ref true in
      for v = 0 to n - 1 do
        if v <> source && v <> sink && net.(v) <> 0 then ok := false
      done;
      if !ok && net.(sink) >= 0 then begin
        let f = net.(sink) in
        match Hashtbl.find_opt best_for_flow f with
        | Some c when c <= !cost -> ()
        | _ -> Hashtbl.replace best_for_flow f !cost
      end
    end
    else begin
      let _, _, cap, _ = edges.(i) in
      for f = 0 to cap do
        assignment.(i) <- f;
        enumerate (i + 1)
      done;
      assignment.(i) <- 0
    end
  in
  enumerate 0;
  let max_flow = Hashtbl.fold (fun f _ acc -> max f acc) best_for_flow 0 in
  (max_flow, Hashtbl.find best_for_flow max_flow)

let prop_matches_brute_force =
  let gen =
    QCheck.Gen.(
      let n = 4 in
      let edge =
        map3
          (fun s d (cap, cost) -> (s, d, cap, cost))
          (int_range 0 (n - 1))
          (int_range 0 (n - 1))
          (pair (int_range 1 2) (int_range 0 4))
      in
      list_size (int_range 1 5) edge)
  in
  QCheck.Test.make ~name:"mcmf matches brute force on tiny graphs" ~count:100
    (QCheck.make gen)
    (fun edges ->
      let edges = List.filter (fun (s, d, _, _) -> s <> d) edges in
      let n = 4 in
      let g = M.create n in
      List.iter
        (fun (src, dst, cap, cost) -> ignore (M.add_edge g ~src ~dst ~cap ~cost))
        edges;
      let flow, cost = M.min_cost_flow g ~source:0 ~sink:(n - 1) () in
      let bf_flow, bf_cost = brute_force_min_cost n edges ~source:0 ~sink:(n - 1) in
      flow = bf_flow && cost = bf_cost)

(* ------------------------------------------------------------------ *)
(* Arc-id handles: self-loops and parallel edges                       *)
(* ------------------------------------------------------------------ *)

let test_arc_id_handles () =
  (* Handles are explicit arc ids in staging order — no (vertex, index)
     bit-packing that aliased for vertex counts >= 2^30. *)
  let g = M.create 2 in
  let h0 = M.add_edge g ~src:0 ~dst:1 ~cap:1 ~cost:1 in
  let h1 = M.add_edge g ~src:0 ~dst:1 ~cap:1 ~cost:5 in
  Alcotest.(check int) "first arc id" 0 h0;
  Alcotest.(check int) "second arc id" 1 h1;
  let flow, cost = M.min_cost_flow g ~source:0 ~sink:1 () in
  Alcotest.(check int) "parallel flow" 2 flow;
  Alcotest.(check int) "parallel cost" 6 cost;
  Alcotest.(check int) "cheap parallel arc saturated" 1 (M.flow_on g h0);
  Alcotest.(check int) "dear parallel arc saturated" 1 (M.flow_on g h1)

let test_self_loop () =
  let g = M.create 2 in
  let h_loop = M.add_edge g ~src:0 ~dst:0 ~cap:5 ~cost:1 in
  let h_fwd = M.add_edge g ~src:0 ~dst:1 ~cap:3 ~cost:2 in
  let flow, cost = M.min_cost_flow g ~source:0 ~sink:1 () in
  Alcotest.(check int) "flow ignores self-loop" 3 flow;
  Alcotest.(check int) "cost ignores self-loop" 6 cost;
  Alcotest.(check int) "no flow on self-loop" 0 (M.flow_on g h_loop);
  Alcotest.(check int) "forward arc saturated" 3 (M.flow_on g h_fwd)

let test_negative_self_loop_is_cycle () =
  (* A negative-cost self-loop is the smallest negative cycle; the
     reverse-arc index adjustment for self-loops must not corrupt it. *)
  let g = M.create 2 in
  ignore (M.add_edge g ~src:0 ~dst:0 ~cap:1 ~cost:(-3));
  ignore (M.add_edge g ~src:0 ~dst:1 ~cap:1 ~cost:1);
  match M.solve g ~source:0 ~sink:1 () with
  | Ok _ -> Alcotest.fail "negative self-loop must be detected"
  | Error (M.Negative_cycle arcs) ->
    Alcotest.(check bool) "offending arc reported" true
      (List.exists (fun (a : M.arc) -> a.M.a_cost = -3) arcs)

(* ------------------------------------------------------------------ *)
(* Differential: CSR solver vs the seed SSP implementation             *)
(* ------------------------------------------------------------------ *)

let all_variants = [ M.Ssp; M.Radix; M.Blocking ]

let ref_min_cost_flow edges n ~source ~sink =
  let r = Ref_ssp.create n in
  List.iter
    (fun (src, dst, cap, cost) ->
      ignore (Ref_ssp.add_edge r ~src ~dst ~cap ~cost))
    edges;
  Ref_ssp.min_cost_flow r ~source ~sink ()

let solve_variant variant edges n ~source ~sink =
  let b = M.Builder.create n in
  List.iter
    (fun (src, dst, cap, cost) ->
      ignore (M.Builder.add_edge b ~src ~dst ~cap ~cost))
    edges;
  let g = M.Csr.of_builder b in
  let ws = M.Workspace.create () in
  match M.solve_csr g ~ws ~source ~sink ~variant () with
  | Ok s -> (s.M.flow, s.M.cost)
  | Error _ -> (min_int, min_int)

(* Every solver variant must reproduce the seed SSP's (flow, cost) exactly:
   max flow is unique, and so is the min cost at max flow, even where
   per-arc flow splits differ. *)
let check_against_ref ~what edges n ~source ~sink =
  let rflow, rcost = ref_min_cost_flow edges n ~source ~sink in
  List.iter
    (fun variant ->
      let flow, cost = solve_variant variant edges n ~source ~sink in
      let tag = what ^ " [" ^ M.variant_name variant ^ "]" in
      Alcotest.(check int) (tag ^ ": flow matches seed") rflow flow;
      Alcotest.(check int) (tag ^ ": cost matches seed") rcost cost)
    all_variants

(* >= 200 seeded random graphs on the in-repo property harness.  Half
   allow cycles (non-negative costs, self-loops and parallel edges
   included); half are DAGs with negative costs (src < dst, so no directed
   cycle and Bellman–Ford potentials are exercised without negative
   cycles).  A discrepancy shrinks to a near-minimal edge list before the
   failure (with its replay seed) is reported. *)
type rand_graph = { rg_n : int; rg_edges : (int * int * int * int) list }

let rand_graph_arb =
  let print g =
    Printf.sprintf "{n=%d; edges=[%s]}" g.rg_n
      (String.concat "; "
         (List.map
            (fun (s, d, cap, c) ->
              Printf.sprintf "(%d->%d cap %d cost %d)" s d cap c)
            g.rg_edges))
  in
  let shrink g =
    let ne = List.length g.rg_edges in
    if ne = 0 then []
    else
      let take k l = List.filteri (fun i _ -> i < k) l in
      let remove_at i l = List.filteri (fun j _ -> j <> i) l in
      (if ne >= 2 then [ { g with rg_edges = take (ne / 2) g.rg_edges } ]
       else [])
      @ List.init (min ne 16) (fun i ->
            { g with rg_edges = remove_at i g.rg_edges })
  in
  Props.make ~shrink ~print (fun rng ->
      let n = 2 + Tdf_util.Prng.int rng 18 in
      let m = 1 + Tdf_util.Prng.int rng 60 in
      let negative = Tdf_util.Prng.bool rng in
      let edges = ref [] in
      for _ = 1 to m do
        let s = Tdf_util.Prng.int rng n and d = Tdf_util.Prng.int rng n in
        let cap = Tdf_util.Prng.int rng 9 in
        if negative then begin
          let s, d = (min s d, max s d) in
          if s <> d then begin
            let cost = Tdf_util.Prng.int rng 21 - 10 in
            edges := (s, d, cap, cost) :: !edges
          end
        end
        else begin
          let cost = Tdf_util.Prng.int rng 11 in
          edges := (s, d, cap, cost) :: !edges
        end
      done;
      { rg_n = n; rg_edges = List.rev !edges })

let prop_differential_random =
  Props.test "differential vs seed SSP (400 random, all variants)" ~count:400
    rand_graph_arb (fun g ->
      let source = 0 and sink = g.rg_n - 1 in
      let rflow, rcost = ref_min_cost_flow g.rg_edges g.rg_n ~source ~sink in
      List.for_all
        (fun variant ->
          (rflow, rcost)
          = solve_variant variant g.rg_edges g.rg_n ~source ~sink)
        all_variants)

(* Transportation network shaped like the paper's legalization bin graphs
   (the generator the solver microbenchmark uses): source -> supply bins
   -> demand bins (windowed adjacency) -> sink. *)
let transportation_edges ~supplies ~demands ~window ~seed =
  let rng = Tdf_util.Prng.create seed in
  let sup = Array.init supplies (fun _ -> 1 + Tdf_util.Prng.int rng 8) in
  let dem = Array.init demands (fun _ -> 1 + Tdf_util.Prng.int rng 8) in
  let source = 0 and sink = supplies + demands + 1 in
  let edges = ref [] in
  for i = 0 to supplies - 1 do
    edges := (source, 1 + i, sup.(i), 0) :: !edges
  done;
  for j = 0 to demands - 1 do
    edges := (1 + supplies + j, sink, dem.(j), 0) :: !edges
  done;
  for i = 0 to supplies - 1 do
    let center = i * demands / supplies in
    for dj = -window to window do
      let j = center + dj in
      if j >= 0 && j < demands then
        edges :=
          ( 1 + i,
            1 + supplies + j,
            min sup.(i) dem.(j),
            abs dj + Tdf_util.Prng.int rng 3 )
          :: !edges
    done
  done;
  (List.rev !edges, sink + 1, source, sink)

let test_differential_benchmark_graphs () =
  List.iter
    (fun (supplies, demands, window, seed) ->
      let edges, n, source, sink =
        transportation_edges ~supplies ~demands ~window ~seed
      in
      check_against_ref
        ~what:(Printf.sprintf "transportation %dx%d" supplies demands)
        edges n ~source ~sink)
    [ (8, 8, 2, 1); (24, 24, 4, 42); (40, 32, 6, 7); (64, 64, 5, 11) ]

(* ------------------------------------------------------------------ *)
(* Adversarial differential families (all solver variants vs seed SSP)  *)
(* ------------------------------------------------------------------ *)

(* Complete bipartite supply/demand coupling: every supply reaches every
   demand, maximizing shortest-path ties and the fan-out of the tight-arc
   DAG the blocking phase walks. *)
let test_differential_dense_bipartite () =
  List.iter
    (fun (supplies, demands, seed) ->
      let edges, n, source, sink =
        transportation_edges ~supplies ~demands ~window:demands ~seed
      in
      check_against_ref
        ~what:(Printf.sprintf "dense bipartite %dx%d" supplies demands)
        edges n ~source ~sink)
    [ (12, 12, 2); (20, 16, 13); (16, 24, 99) ]

(* Ladder / grid chains: long shortest paths (hundreds of hops) stress
   potential accumulation, radix-bucket redistribution and the DFS stack
   depth of the blocking phase. *)
let grid_edges ~rows ~cols ~seed =
  let rng = Tdf_util.Prng.create seed in
  let v r c = 1 + (r * cols) + c in
  let n = (rows * cols) + 2 in
  let source = 0 and sink = n - 1 in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    edges := (source, v r 0, 1 + Tdf_util.Prng.int rng 4, 0) :: !edges;
    edges := (v r (cols - 1), sink, 1 + Tdf_util.Prng.int rng 4, 0) :: !edges
  done;
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then
        edges :=
          ( v r c,
            v r (c + 1),
            1 + Tdf_util.Prng.int rng 5,
            Tdf_util.Prng.int rng 7 )
          :: !edges;
      if r + 1 < rows then begin
        edges :=
          ( v r c,
            v (r + 1) c,
            1 + Tdf_util.Prng.int rng 3,
            Tdf_util.Prng.int rng 7 )
          :: !edges;
        edges :=
          ( v (r + 1) c,
            v r c,
            1 + Tdf_util.Prng.int rng 3,
            Tdf_util.Prng.int rng 7 )
          :: !edges
      end
    done
  done;
  (List.rev !edges, n, source, sink)

let test_differential_long_chain_grids () =
  List.iter
    (fun (rows, cols, seed) ->
      let edges, n, source, sink = grid_edges ~rows ~cols ~seed in
      check_against_ref
        ~what:(Printf.sprintf "grid %dx%d" rows cols)
        edges n ~source ~sink)
    [ (1, 120, 4); (2, 60, 8); (3, 40, 15); (4, 25, 23) ]

(* Bundles of zero-cost parallel arcs: every augmenting path is a tie, so
   any tie-order divergence between the heaps must still land on the same
   (flow, cost); also exercises zero-length plateaus in the blocking DFS
   (and its cycle avoidance, via the zero-cost back arcs). *)
let test_differential_zero_cost_parallel () =
  List.iter
    (fun seed ->
      let rng = Tdf_util.Prng.create seed in
      let n = 6 in
      let edges = ref [] in
      for s = 0 to n - 2 do
        for d = 1 to n - 1 do
          if s <> d then
            for _ = 1 to 1 + Tdf_util.Prng.int rng 4 do
              let cost = if Tdf_util.Prng.int rng 4 = 0 then 1 else 0 in
              edges := (s, d, 1 + Tdf_util.Prng.int rng 2, cost) :: !edges
            done
        done
      done;
      check_against_ref
        ~what:(Printf.sprintf "zero-cost parallel (seed %d)" seed)
        (List.rev !edges) n ~source:0 ~sink:(n - 1))
    [ 1; 7; 21; 34 ]

(* Micro-unit costs near the legalizer's scaling magnitude (1e6 per unit
   cost, so paths accumulate ~1e8): large exact-integer keys stress radix
   bucket indexing on high bits and would expose any float rounding if a
   heap ever went through floats. *)
let test_differential_near_max_micro_costs () =
  List.iter
    (fun (supplies, demands, window, seed) ->
      let edges, n, source, sink =
        transportation_edges ~supplies ~demands ~window ~seed
      in
      let rng = Tdf_util.Prng.create (seed + 1) in
      let edges =
        List.map
          (fun (s, d, cap, c) ->
            if c = 0 then (s, d, cap, c)
            else (s, d, cap, (1_000_000 * c) - Tdf_util.Prng.int rng 50))
          edges
      in
      check_against_ref
        ~what:(Printf.sprintf "near-max micro costs %dx%d" supplies demands)
        edges n ~source ~sink)
    [ (10, 10, 3, 6); (24, 20, 5, 17); (32, 32, 4, 29) ]

(* Supply that cannot reach the sink: dead-end supply bins (arcs from the
   source but none onward) and starved demand bins.  Max flow is limited
   by reachability, and unreachable vertices keep stale potentials — the
   regime where a broken reduced-cost invariant would trip the radix
   heap's monotone check. *)
let test_differential_disconnected_supply () =
  List.iter
    (fun (supplies, demands, window, seed) ->
      let edges, n, source, sink =
        transportation_edges ~supplies ~demands ~window ~seed
      in
      let edges =
        List.filter
          (fun (s, d, _, _) ->
            (* drop every third supply's outgoing arcs and every fourth
               demand's sink arc *)
            let sup_out = s >= 1 && s <= supplies && (s - 1) mod 3 = 0 in
            let dem_in = d = sink && s >= 1 + supplies && (s - supplies) mod 4 = 0
            in
            (not sup_out) && not dem_in)
          edges
      in
      check_against_ref
        ~what:
          (Printf.sprintf "disconnected supply %dx%d" supplies demands)
        edges n ~source ~sink)
    [ (9, 9, 2, 3); (21, 15, 4, 12); (30, 30, 3, 27) ]

(* ------------------------------------------------------------------ *)
(* Workspace reuse                                                     *)
(* ------------------------------------------------------------------ *)

let solve_fresh edges n ~source ~sink =
  let b = M.Builder.create n in
  List.iter
    (fun (src, dst, cap, cost) ->
      ignore (M.Builder.add_edge b ~src ~dst ~cap ~cost))
    edges;
  let g = M.Csr.of_builder b in
  let ws = M.Workspace.create () in
  match M.solve_csr g ~ws ~source ~sink () with
  | Ok s -> (s.M.flow, s.M.cost)
  | Error _ -> Alcotest.fail "unexpected negative cycle"

let test_workspace_reuse_determinism () =
  (* Two consecutive solves on one shared workspace must equal two fresh
     solves with private workspaces. *)
  let e1, n1, s1, t1 = transportation_edges ~supplies:16 ~demands:16 ~window:3 ~seed:5 in
  let e2, n2, s2, t2 = transportation_edges ~supplies:30 ~demands:24 ~window:4 ~seed:9 in
  let shared = M.Workspace.create () in
  let solve_with_shared edges n ~source ~sink =
    let b = M.Builder.create n in
    List.iter
      (fun (src, dst, cap, cost) ->
        ignore (M.Builder.add_edge b ~src ~dst ~cap ~cost))
      edges;
    match M.solve_csr (M.Csr.of_builder b) ~ws:shared ~source ~sink () with
    | Ok s -> (s.M.flow, s.M.cost)
    | Error _ -> Alcotest.fail "unexpected negative cycle"
  in
  let r1 = solve_with_shared e1 n1 ~source:s1 ~sink:t1 in
  let r2 = solve_with_shared e2 n2 ~source:s2 ~sink:t2 in
  Alcotest.(check (pair int int))
    "first solve on shared workspace" (solve_fresh e1 n1 ~source:s1 ~sink:t1) r1;
  Alcotest.(check (pair int int))
    "second solve on shared workspace" (solve_fresh e2 n2 ~source:s2 ~sink:t2) r2

let test_reset_caps_repeated_solve () =
  let edges, n, source, sink =
    transportation_edges ~supplies:20 ~demands:20 ~window:3 ~seed:3
  in
  let b = M.Builder.create n in
  let handles =
    List.map
      (fun (src, dst, cap, cost) -> M.Builder.add_edge b ~src ~dst ~cap ~cost)
      edges
  in
  let g = M.Csr.of_builder b in
  let ws = M.Workspace.create () in
  let solve () =
    match M.solve_csr g ~ws ~source ~sink () with
    | Ok s -> (s.M.flow, s.M.cost)
    | Error _ -> Alcotest.fail "unexpected negative cycle"
  in
  let r1 = solve () in
  let flows1 = List.map (M.Csr.flow_on g) handles in
  M.Csr.reset_caps g;
  let r2 = solve () in
  let flows2 = List.map (M.Csr.flow_on g) handles in
  Alcotest.(check (pair int int)) "reset_caps solve identical" r1 r2;
  Alcotest.(check (list int)) "per-arc flows identical" flows1 flows2

(* Property form of the reset_caps round-trip: on random transportation
   shapes, resetting a solved CSR graph and re-solving reproduces the
   exact (flow, cost) and every per-arc flow. *)
let prop_reset_caps_roundtrip =
  Props.test "reset_caps round-trip (random transportation)" ~count:40
    Props.(
      pair
        (pair (int_range 2 24) (int_range 2 24))
        (pair (int_range 1 5) (int_range 0 1_000_000)))
    (fun ((supplies, demands), (window, seed)) ->
      let edges, n, source, sink =
        transportation_edges ~supplies ~demands ~window ~seed
      in
      let b = M.Builder.create n in
      let handles =
        List.map
          (fun (src, dst, cap, cost) ->
            M.Builder.add_edge b ~src ~dst ~cap ~cost)
          edges
      in
      let g = M.Csr.of_builder b in
      let ws = M.Workspace.create () in
      let solve () =
        match M.solve_csr g ~ws ~source ~sink () with
        | Ok s -> (s.M.flow, s.M.cost)
        | Error _ -> (-1, -1)
      in
      let r1 = solve () in
      let flows1 = List.map (M.Csr.flow_on g) handles in
      M.Csr.reset_caps g;
      let r2 = solve () in
      let flows2 = List.map (M.Csr.flow_on g) handles in
      r1 = r2 && flows1 = flows2)

let suite =
  [
    Alcotest.test_case "single edge" `Quick test_single_edge;
    Alcotest.test_case "prefers cheap path" `Quick test_two_paths_prefers_cheap;
    Alcotest.test_case "max_flow limit" `Quick test_max_flow_limit;
    Alcotest.test_case "rerouting via residual" `Quick test_rerouting_via_residual;
    Alcotest.test_case "negative edge costs" `Quick test_negative_edge_costs;
    Alcotest.test_case "disconnected" `Quick test_disconnected;
    Alcotest.test_case "arc-id handles (parallel edges)" `Quick test_arc_id_handles;
    Alcotest.test_case "self-loop" `Quick test_self_loop;
    Alcotest.test_case "negative self-loop detected" `Quick
      test_negative_self_loop_is_cycle;
    prop_differential_random;
    Alcotest.test_case "differential vs seed SSP (transportation)" `Quick
      test_differential_benchmark_graphs;
    Alcotest.test_case "differential: dense bipartite (all variants)" `Quick
      test_differential_dense_bipartite;
    Alcotest.test_case "differential: long-chain grids (all variants)" `Quick
      test_differential_long_chain_grids;
    Alcotest.test_case "differential: zero-cost parallel arcs (all variants)"
      `Quick test_differential_zero_cost_parallel;
    Alcotest.test_case "differential: near-max micro costs (all variants)"
      `Quick test_differential_near_max_micro_costs;
    Alcotest.test_case "differential: disconnected supply (all variants)"
      `Quick test_differential_disconnected_supply;
    Alcotest.test_case "workspace reuse determinism" `Quick
      test_workspace_reuse_determinism;
    Alcotest.test_case "reset_caps repeated solve" `Quick
      test_reset_caps_repeated_solve;
    prop_reset_caps_roundtrip;
    QCheck_alcotest.to_alcotest prop_matches_brute_force;
  ]
