(* The serve daemon: framing, protocol decode, request handling against a
   live server instance, the frozen-cell byte-identity guarantee over the
   wire, LRU session eviction, fault injection mid-request, and a full
   socket round-trip driven through the steppable event loop (no fork —
   worker domains may be live under TDFLOW_JOBS>1). *)

module Frame = Tdf_io.Frame
module Protocol = Tdf_io.Protocol
module Text = Tdf_io.Text
module Delta = Tdf_io.Delta
module Server = Tdf_server.Server
module Client = Tdf_server.Client
module Eco = Tdf_incremental.Eco
module Flow3d = Tdf_legalizer.Flow3d
module Legality = Tdf_metrics.Legality
module Placement = Tdf_netlist.Placement
module Failpoint = Tdf_util.Failpoint

let check = Alcotest.(check bool)

(* ---- framing -------------------------------------------------------- *)

let test_frame_roundtrip () =
  let payloads = [ ""; "x"; "{\"req\":\"ping\"}"; "line1\nline2\n"; String.make 5000 'z' ] in
  (* All at once. *)
  let dec = Frame.decoder () in
  List.iter (fun p -> Frame.feed dec (Frame.encode p)) payloads;
  List.iter
    (fun p ->
      match Frame.next dec with
      | Ok (Some got) -> Alcotest.(check string) "payload" p got
      | Ok None -> Alcotest.fail "frame not ready"
      | Error e -> Alcotest.fail (Frame.error_to_string e))
    payloads;
  check "drained" true (Frame.next dec = Ok None);
  (* Byte at a time: incremental decode must see the same payloads. *)
  let dec = Frame.decoder () in
  let all = String.concat "" (List.map Frame.encode payloads) in
  let got = ref [] in
  String.iter
    (fun c ->
      Frame.feed dec (String.make 1 c);
      match Frame.next dec with
      | Ok (Some p) -> got := p :: !got
      | Ok None -> ()
      | Error e -> Alcotest.fail (Frame.error_to_string e))
    all;
  check "byte-at-a-time" true (List.rev !got = payloads)

let test_frame_truncated () =
  let dec = Frame.decoder () in
  let frame = Frame.encode "hello world" in
  (* Every strict prefix of a valid frame must decode to "need more". *)
  for cut = 0 to String.length frame - 1 do
    let dec = Frame.decoder () in
    Frame.feed dec (String.sub frame 0 cut);
    check "prefix incomplete" true (Frame.next dec = Ok None)
  done;
  Frame.feed dec frame;
  check "whole frame ok" true (Frame.next dec = Ok (Some "hello world"))

let test_frame_oversized () =
  let dec = Frame.decoder ~max_frame:8 () in
  Frame.feed dec (Frame.encode (String.make 100 'a'));
  (match Frame.next dec with
  | Error (Frame.Oversized { len = 100; limit = 8 }) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Frame.error_to_string e)
  | Ok _ -> Alcotest.fail "oversized frame accepted");
  (* The decoder is poisoned: same error forever, feed refuses. *)
  (match Frame.next dec with
  | Error (Frame.Oversized _) -> ()
  | _ -> Alcotest.fail "poisoned decoder forgot its error");
  match Frame.feed dec "more" with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "poisoned decoder accepted bytes"

let test_frame_bad_prefix_and_terminator () =
  let dec = Frame.decoder () in
  Frame.feed dec "12ab\n";
  (match Frame.next dec with
  | Error (Frame.Bad_prefix _) -> ()
  | _ -> Alcotest.fail "non-decimal prefix accepted");
  let dec = Frame.decoder () in
  (* Correct length, wrong terminator byte. *)
  Frame.feed dec "3\nabcX";
  match Frame.next dec with
  | Error Frame.Bad_terminator -> ()
  | _ -> Alcotest.fail "missing terminator accepted"

(* ---- protocol ------------------------------------------------------- *)

let test_request_roundtrip () =
  let reqs =
    [
      Protocol.Ping;
      Protocol.Stats;
      Protocol.Shutdown;
      Protocol.Load_design
        {
          session = "s";
          design = Protocol.Text "cells 0\n";
          placement = Some (Protocol.Path "/tmp/p.place");
          tiles = Some 4;
        };
      Protocol.Legalize
        {
          session = "s";
          budget_ms = Some 50;
          jobs = Some 2;
          tiles = Some 2;
          want_placement = true;
        };
      Protocol.Eco
        {
          session = "s";
          delta = Protocol.Text "move 1 2 3 0\n";
          radius = Some 2;
          max_widenings = None;
          budget_ms = None;
          jobs = None;
          tiles = Some 1;
          want_placement = false;
        };
      Protocol.Get_placement { session = "s" };
    ]
  in
  List.iter
    (fun req ->
      match Protocol.request_of_string (Protocol.request_to_string req) with
      | Ok req' -> check (Protocol.request_kind req) true (req = req')
      | Error e -> Alcotest.failf "%s: %s" e.Protocol.code e.Protocol.detail)
    reqs

let decode_err payload =
  match Protocol.request_of_string payload with
  | Error e -> e.Protocol.code
  | Ok _ -> "accepted"

let test_request_decode_errors () =
  Alcotest.(check string) "syntax" "bad-json" (decode_err "{not json");
  Alcotest.(check string) "not an object" "bad-request" (decode_err "[1,2]");
  Alcotest.(check string) "no req field" "bad-request" (decode_err "{\"x\":1}");
  Alcotest.(check string) "req not a string" "bad-request" (decode_err "{\"req\":42}");
  Alcotest.(check string) "unknown tag" "unknown-request"
    (decode_err "{\"req\":\"frobnicate\"}");
  Alcotest.(check string) "eco without delta" "bad-request"
    (decode_err "{\"req\":\"eco\",\"session\":\"s\"}");
  Alcotest.(check string) "load without session" "bad-request"
    (decode_err "{\"req\":\"load-design\",\"design_text\":\"x\"}")

let test_response_roundtrip () =
  let resps =
    [
      Ok Protocol.Pong;
      Ok Protocol.Shutting_down;
      Protocol.error ~code:"unknown-session" "no session \"x\"";
      Ok
        (Protocol.Eco_applied
           {
             session = "s";
             legal = true;
             path = "local";
             dirty_bins = 3;
             total_bins = 64;
             widenings = 1;
             fallbacks = 0;
             grid_reused = true;
             wall_s = 0.012;
             placement = Some "cell 1 2 3 0\n";
           });
    ]
  in
  List.iter
    (fun resp ->
      match Protocol.response_of_string (Protocol.response_to_string resp) with
      | Ok resp' -> check "response round-trips" true (resp = resp')
      | Error e -> Alcotest.fail e)
    resps

(* ---- request handling on a live server ------------------------------ *)

let sock_path name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "tdfsrv-%d-%s.sock" (Unix.getpid ()) name)

let with_server ?(max_sessions = 8) ?(tweak = fun c -> c) name f =
  let cfg =
    tweak
      {
        (Server.default_cfg ~socket_path:(sock_path name)) with
        Server.max_sessions;
      }
  in
  let server = Server.create cfg in
  Fun.protect ~finally:(fun () -> Server.close server) (fun () -> f server cfg)

(* A small legal fixture served as inline text, exactly what a client
   would send in "design_text"/"placement_text". *)
let fixture seed =
  let d = Fixtures.random ~n:40 seed in
  let p = (Flow3d.legalize d).Flow3d.placement in
  check "fixture legal" true (Legality.is_legal d p);
  (d, p)

let load server ~session (d, p) =
  Server.handle server
    (Protocol.Load_design
       {
         session;
         design = Protocol.Text (Text.design_to_string d);
         placement = Some (Protocol.Text (Text.placement_to_string d p));
         tiles = None;
       })

let ok_or_fail = function
  | Ok reply -> reply
  | Error e -> Alcotest.failf "%s: %s" e.Protocol.code e.Protocol.detail

let err_code = function
  | Ok _ -> Alcotest.fail "expected an error reply"
  | Error e -> e.Protocol.code

let test_handle_flows () =
  with_server "flows" (fun server _cfg ->
      check "ping" true (Server.handle server Protocol.Ping = Ok Protocol.Pong);
      (match ok_or_fail (load server ~session:"a" (fixture 11)) with
      | Protocol.Loaded { n_cells = 40; legal = true; _ } -> ()
      | _ -> Alcotest.fail "wrong load reply");
      check "one live session" true (Server.live_sessions server = 1);
      (* First ECO builds the grid; the second reuses it warm. *)
      let eco delta =
        Server.handle server
          (Protocol.Eco
             {
               session = "a";
               delta = Protocol.Text delta;
               radius = None;
               max_widenings = None;
               budget_ms = None;
               jobs = None;
               tiles = None;
               want_placement = false;
             })
      in
      (match ok_or_fail (eco "move 3 10 10 0\n") with
      | Protocol.Eco_applied { legal = true; _ } -> ()
      | _ -> Alcotest.fail "wrong eco reply");
      (match ok_or_fail (eco "move 7 60 20 1\n") with
      | Protocol.Eco_applied { legal = true; grid_reused = true; _ } -> ()
      | Protocol.Eco_applied { grid_reused = false; _ } ->
        Alcotest.fail "second eco rebuilt the grid"
      | _ -> Alcotest.fail "wrong eco reply");
      (* The session's placement is still legal and retrievable. *)
      (match ok_or_fail (Server.handle server (Protocol.Get_placement { session = "a" })) with
      | Protocol.Placement_text { placement; _ } ->
        check "placement text non-empty" true (String.length placement > 0)
      | _ -> Alcotest.fail "wrong get-placement reply");
      (* Typed errors leave the server serving. *)
      Alcotest.(check string) "unknown session" "unknown-session"
        (err_code
           (Server.handle server (Protocol.Get_placement { session = "ghost" })));
      Alcotest.(check string) "bad delta cell" "invalid-delta"
        (err_code (eco "move 99999 1 1 0\n"));
      Alcotest.(check string) "delta parse error" "parse-error"
        (err_code (eco "move 1 2\n"));
      (match ok_or_fail (Server.handle server Protocol.Stats) with
      | Protocol.Stats_snapshot _ -> ()
      | _ -> Alcotest.fail "wrong stats reply");
      check "still alive after errors" true
        (Server.handle server Protocol.Ping = Ok Protocol.Pong);
      (* Shutdown flips [stopping] but still replies. *)
      check "shutdown reply" true
        (Server.handle server Protocol.Shutdown = Ok Protocol.Shutting_down);
      check "stopping" true (Server.stopping server))

(* Satellite 1: the placement text a server reply carries is byte-identical
   to what the incremental engine produces directly, and every cell the
   delta did not touch keeps its exact line — the frozen-cell guarantee
   survives the protocol encode/decode round-trip. *)
let test_byte_identity () =
  with_server "bytes" (fun server _cfg ->
      let d, p = fixture 23 in
      let before = Text.placement_to_string d p in
      ignore (ok_or_fail (load server ~session:"s" (d, p)));
      let delta_text = "move 5 30 25 0\nmove 12 80 15 1\n" in
      let served =
        match
          ok_or_fail
            (Server.handle server
               (Protocol.Eco
                  {
                    session = "s";
                    delta = Protocol.Text delta_text;
                    radius = None;
                    max_widenings = None;
                    budget_ms = None;
                    jobs = None;
                    tiles = None;
                    want_placement = true;
                  }))
        with
        | Protocol.Eco_applied { placement = Some txt; legal = true; _ } -> txt
        | Protocol.Eco_applied { placement = None; _ } ->
          Alcotest.fail "placement:true reply carried no placement"
        | _ -> Alcotest.fail "wrong eco reply"
      in
      (* Same engine, no server in between. *)
      let sess = Eco.Session.create d (Placement.copy p) in
      let direct =
        match Eco.Session.eco sess (Result.get_ok (Delta.read delta_text)) with
        | Ok r -> Text.placement_to_string r.Eco.design r.Eco.placement
        | Error e -> Alcotest.fail (Eco.error_to_string e)
      in
      Alcotest.(check string) "server text = direct engine text" direct served;
      (* Frozen cells: every line outside the delta's disturbance must be
         carried over exactly.  Moved cells (5 and 12) may differ; count
         how many lines changed at all and require the overwhelming
         majority frozen byte-for-byte. *)
      let lines s = String.split_on_char '\n' s in
      let before_l = lines before and after_l = lines served in
      check "same line count" true (List.length before_l = List.length after_l);
      let changed =
        List.fold_left2
          (fun n a b -> if a = b then n else n + 1)
          0 before_l after_l
      in
      check "a real change happened" true (changed > 0);
      check "far cells frozen byte-for-byte" true (changed <= 12);
      (* And the served text round-trips through the parser unchanged. *)
      match Text.read_placement d served with
      | Ok p' ->
        Alcotest.(check string) "decode/encode stable" served
          (Text.placement_to_string d p')
      | Error e -> Alcotest.fail e)

let test_lru_eviction () =
  with_server ~max_sessions:2 "lru" (fun server _cfg ->
      let fx = fixture 31 in
      ignore (ok_or_fail (load server ~session:"a" fx));
      ignore (ok_or_fail (load server ~session:"b" fx));
      (* Touch "a" so "b" is the LRU victim when "c" arrives. *)
      ignore (ok_or_fail (Server.handle server (Protocol.Get_placement { session = "a" })));
      ignore (ok_or_fail (load server ~session:"c" fx));
      check "capacity respected" true (Server.live_sessions server = 2);
      Alcotest.(check string) "LRU victim evicted" "unknown-session"
        (err_code (Server.handle server (Protocol.Get_placement { session = "b" })));
      (match Server.handle server (Protocol.Get_placement { session = "a" }) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "recently-used session evicted: %s" e.Protocol.detail);
      (* Reloading an existing id replaces in place, no eviction. *)
      ignore (ok_or_fail (load server ~session:"c" fx));
      check "replace is not eviction" true (Server.live_sessions server = 2))

(* Satellite 3: kill a request mid-execution via the "serve.request"
   failpoint — typed "injected" error reply, warm cache untouched, server
   keeps serving. *)
let test_failpoint_kill () =
  with_server "failpoint" (fun server _cfg ->
      ignore (ok_or_fail (load server ~session:"s" (fixture 41)));
      let eco () =
        Server.handle server
          (Protocol.Eco
             {
               session = "s";
               delta = Protocol.Text "move 2 15 15 0\n";
               radius = None;
               max_widenings = None;
               budget_ms = None;
               jobs = None;
               tiles = None;
               want_placement = false;
             })
      in
      Failpoint.reset ();
      Failpoint.arm "serve.request";
      Alcotest.(check string) "killed mid-request" "injected" (err_code (eco ()));
      check "charge consumed" true (Failpoint.fired "serve.request" = 1);
      (* The session survived the injected death and still serves. *)
      check "session intact" true (Server.live_sessions server = 1);
      (match ok_or_fail (eco ()) with
      | Protocol.Eco_applied { legal = true; _ } -> ()
      | _ -> Alcotest.fail "server did not recover after injection");
      Failpoint.reset ())

(* ---- socket end-to-end ---------------------------------------------- *)

(* Single-process client: nonblocking fd driven in lockstep with
   [Server.step].  Forking would hang under TDFLOW_JOBS>1 (live worker
   domains don't survive fork), so the loop is stepped explicitly. *)
let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  Unix.set_nonblock fd;
  fd

let send fd payload =
  let s = Frame.encode payload in
  let b = Bytes.of_string s in
  let off = ref 0 in
  while !off < Bytes.length b do
    match Unix.write fd b !off (Bytes.length b - !off) with
    | n -> off := !off + n
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      ignore (Unix.select [] [ fd ] [] 0.1)
  done

(* Pump the server until the client fd yields one frame (or EOF → None). *)
let recv server fd dec =
  let buf = Bytes.create 4096 in
  let deadline = 500 in
  let rec loop n =
    if n > deadline then Alcotest.fail "no reply within stepping budget"
    else
      match Frame.next dec with
      | Ok (Some payload) -> Some payload
      | Error e -> Alcotest.fail (Frame.error_to_string e)
      | Ok None -> (
        ignore (Server.step ~timeout_ms:10 server);
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 -> None
        | got ->
          Frame.feed dec (Bytes.sub_string buf 0 got);
          loop (n + 1)
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          loop (n + 1))
  in
  loop 0

let call server fd dec req =
  send fd (Protocol.request_to_string req);
  match recv server fd dec with
  | None -> Alcotest.fail "server closed the connection"
  | Some payload -> (
    match Protocol.response_of_string payload with
    | Ok resp -> resp
    | Error e -> Alcotest.failf "unparseable response: %s" e)

let test_socket_end_to_end () =
  with_server "e2e" (fun server cfg ->
      let d, p = fixture 53 in
      let fd = connect cfg.Server.socket_path in
      let dec = Frame.decoder () in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          check "wire ping" true (call server fd dec Protocol.Ping = Ok Protocol.Pong);
          (match
             ok_or_fail
               (call server fd dec
                  (Protocol.Load_design
                     {
                       session = "wire";
                       design = Protocol.Text (Text.design_to_string d);
                       placement = Some (Protocol.Text (Text.placement_to_string d p));
                       tiles = None;
                     }))
           with
          | Protocol.Loaded { n_cells = 40; _ } -> ()
          | _ -> Alcotest.fail "wrong load reply");
          (match
             ok_or_fail
               (call server fd dec
                  (Protocol.Eco
                     {
                       session = "wire";
                       delta = Protocol.Text "move 9 45 30 1\n";
                       radius = None;
                       max_widenings = None;
                       budget_ms = None;
                       jobs = None;
                       tiles = None;
                       want_placement = true;
                     }))
           with
          | Protocol.Eco_applied { legal = true; placement = Some _; _ } -> ()
          | _ -> Alcotest.fail "wrong eco reply");
          check "wire shutdown" true
            (call server fd dec Protocol.Shutdown = Ok Protocol.Shutting_down);
          check "loop stops after shutdown" true (not (Server.step server));
          Server.close server;
          check "socket unlinked" true (not (Sys.file_exists cfg.Server.socket_path)))
      )

let test_socket_bad_frame () =
  with_server "badframe" (fun server cfg ->
      let fd = connect cfg.Server.socket_path in
      let dec = Frame.decoder () in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          (* Garbage prefix: the server must reply once with "bad-frame"
             and then close the connection — framing is unrecoverable. *)
          let b = Bytes.of_string "garbage without a length\n" in
          ignore (Unix.write fd b 0 (Bytes.length b));
          (match recv server fd dec with
          | Some payload -> (
            match Protocol.response_of_string payload with
            | Ok (Error e) ->
              Alcotest.(check string) "typed framing error" "bad-frame"
                e.Protocol.code
            | Ok (Ok _) -> Alcotest.fail "garbage produced a success reply"
            | Error e -> Alcotest.failf "unparseable response: %s" e)
          | None -> Alcotest.fail "connection closed without a bad-frame reply");
          (* Then EOF. *)
          match recv server fd dec with
          | None -> ()
          | Some _ -> Alcotest.fail "connection survived a framing loss"))

(* ---- overload control and lifecycle ---------------------------------- *)

(* Pipeline a burst past max_pending in one write: the first frame
   executes, the rest are shed with typed "overloaded" replies delivered
   in request order. *)
let test_overload_shed () =
  with_server ~tweak:(fun c -> { c with Server.max_pending = 1 }) "shed"
    (fun server cfg ->
      let fd = connect cfg.Server.socket_path in
      let dec = Frame.decoder () in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let burst =
            String.concat ""
              (List.init 4 (fun _ ->
                   Frame.encode (Protocol.request_to_string Protocol.Ping)))
          in
          let b = Bytes.of_string burst in
          ignore (Unix.write fd b 0 (Bytes.length b));
          let replies =
            List.init 4 (fun _ ->
                match recv server fd dec with
                | Some payload -> (
                  match Protocol.response_of_string payload with
                  | Ok r -> r
                  | Error e -> Alcotest.failf "unparseable reply: %s" e)
                | None -> Alcotest.fail "connection closed during burst")
          in
          (match replies with
          | Ok Protocol.Pong :: shed ->
            List.iter
              (fun r ->
                Alcotest.(check string) "shed reply" "overloaded" (err_code r))
              shed
          | _ -> Alcotest.fail "first frame of the burst was not executed");
          (* A shed request costs no session work and the server keeps
             serving afterwards. *)
          check "alive after shedding" true
            (call server fd dec Protocol.Ping = Ok Protocol.Pong)))

(* A client that ignores "overloaded" backpressure and keeps streaming
   must not grow its queue without bound: past max_conn_queue the
   connection gets one typed "queue-overflow" error and is closed,
   dropping what it had queued. *)
let test_conn_queue_overflow () =
  with_server
    ~tweak:(fun c -> { c with Server.max_pending = 1; max_conn_queue = 4 })
    "connoverflow"
    (fun server cfg ->
      let fd = connect cfg.Server.socket_path in
      let dec = Frame.decoder () in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          (* 8 frames in one write: 1 executable + 3 shed markers fill
             the per-connection queue, the 5th frame overflows it. *)
          let burst =
            String.concat ""
              (List.init 8 (fun _ ->
                   Frame.encode (Protocol.request_to_string Protocol.Ping)))
          in
          let b = Bytes.of_string burst in
          ignore (Unix.write fd b 0 (Bytes.length b));
          (match recv server fd dec with
          | Some payload -> (
            match Protocol.response_of_string payload with
            | Ok r ->
              Alcotest.(check string) "typed overflow error" "queue-overflow"
                (err_code r)
            | Error e -> Alcotest.failf "unparseable reply: %s" e)
          | None -> Alcotest.fail "connection closed without a typed error");
          (* Then EOF: the queued work was dropped with the connection. *)
          (match recv server fd dec with
          | None -> ()
          | Some _ -> Alcotest.fail "connection survived the queue overflow");
          (* The server itself keeps serving new connections. *)
          let fd2 = connect cfg.Server.socket_path in
          let dec2 = Frame.decoder () in
          Fun.protect
            ~finally:(fun () ->
              try Unix.close fd2 with Unix.Unix_error _ -> ())
            (fun () ->
              check "alive after overflow" true
                (call server fd2 dec2 Protocol.Ping = Ok Protocol.Pong))))

(* The client must never blindly re-send a mutating request whose reply
   was lost: the daemon journals and applies before replying, so the
   mutation may already be durable and a re-send could apply it twice.
   Resend-safe requests (ping, reads) do attempt the reconnect. *)
let test_client_resend_safety () =
  check "reads/ping/load are resend-safe, legalize/eco are not" true
    (Protocol.request_resend_safe Protocol.Ping
    && Protocol.request_resend_safe Protocol.Stats
    && Protocol.request_resend_safe (Protocol.Get_placement { session = "s" })
    && Protocol.request_resend_safe Protocol.Shutdown
    && Protocol.request_resend_safe
         (Protocol.Load_design
            { session = "s"; design = Protocol.Text ""; placement = None; tiles = None })
    && (not
          (Protocol.request_resend_safe
             (Protocol.Legalize
                {
                  session = "s";
                  budget_ms = None;
                  jobs = None;
                  tiles = None;
                  want_placement = false;
                })))
    && not
         (Protocol.request_resend_safe
            (Protocol.Eco
               {
                 session = "s";
                 delta = Protocol.Text "";
                 radius = None;
                 max_widenings = None;
                 budget_ms = None;
                 jobs = None;
                 tiles = None;
                 want_placement = false;
               })));
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  (* A fake daemon that accepts and immediately drops the connection —
     the reply is lost and the client cannot know whether the request
     was applied. *)
  let path = sock_path "resend" in
  if Sys.file_exists path then Sys.remove path;
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listener (Unix.ADDR_UNIX path);
  Unix.listen listener 4;
  let dead_conn () =
    let c = Client.connect ~retries:2 ~backoff_ms:1 path in
    let accepted, _ = Unix.accept listener in
    Unix.close accepted;
    c
  in
  let eco_req =
    Protocol.Eco
      {
        session = "s";
        delta = Protocol.Text "move 0 1 1 0\n";
        radius = None;
        max_widenings = None;
        budget_ms = None;
        jobs = None;
        tiles = None;
        want_placement = false;
      }
  in
  let c_eco = dead_conn () in
  let c_ping = dead_conn () in
  Fun.protect
    ~finally:(fun () ->
      Client.close c_eco;
      Client.close c_ping;
      (try Unix.close listener with Unix.Unix_error _ -> ());
      if Sys.file_exists path then Sys.remove path)
    (fun () ->
      (* Mutating: retry budget available, but the client must refuse to
         re-send and name the unknown state. *)
      (match Client.call c_eco eco_req with
      | _ -> Alcotest.fail "eco succeeded against a dead connection"
      | exception Failure msg ->
        check "eco failure names the unknown state" true
          (contains msg "state unknown");
        check "eco did not burn reconnect retries" true
          (Client.retries_used c_eco = 0));
      (* Resend-safe: with nothing listening any more, the client must at
         least have attempted the reconnect. *)
      Unix.close listener;
      Sys.remove path;
      match Client.call c_ping Protocol.Ping with
      | _ -> Alcotest.fail "ping succeeded against a dead connection"
      | exception Failure msg ->
        check "ping attempted a re-send via reconnect" true
          (contains msg "reconnect failed"))

(* A stale socket file from a SIGKILLed daemon is probed and removed; a
   live daemon's socket is not stolen; a non-socket file is never
   deleted. *)
let test_stale_socket_handling () =
  let path = sock_path "stale" in
  (* Fabricate a dead daemon: bind, then close without unlinking. *)
  if Sys.file_exists path then Sys.remove path;
  let dead = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind dead (Unix.ADDR_UNIX path);
  Unix.listen dead 1;
  Unix.close dead;
  check "stale file left behind" true (Sys.file_exists path);
  let cfg = Server.default_cfg ~socket_path:path in
  let server = Server.create cfg in
  Fun.protect
    ~finally:(fun () -> Server.close server)
    (fun () ->
      (* Second daemon on the same path: the probe connects, so the
         socket is live and must not be stolen. *)
      (match Server.create cfg with
      | second ->
        Server.close second;
        Alcotest.fail "second daemon stole a live socket"
      | exception Unix.Unix_error (Unix.EADDRINUSE, _, _) -> ());
      check "live socket still present" true (Sys.file_exists path));
  (* A plain file at the path is refused, not deleted. *)
  let oc = open_out path in
  output_string oc "precious";
  close_out oc;
  (match Server.create cfg with
  | second ->
    Server.close second;
    Alcotest.fail "daemon clobbered a non-socket file"
  | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  check "non-socket file untouched" true (Sys.file_exists path);
  Sys.remove path

(* Idle connections are reaped once idle_timeout_s passes with nothing
   queued; an active connection is not. *)
let test_idle_reap () =
  with_server
    ~tweak:(fun c -> { c with Server.idle_timeout_s = 0.05 })
    "reap"
    (fun server cfg ->
      let fd = connect cfg.Server.socket_path in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let dec = Frame.decoder () in
          check "served before idling" true
            (call server fd dec Protocol.Ping = Ok Protocol.Pong);
          Unix.sleepf 0.08;
          (* Let the loop notice the idle connection, then the next read
             must see EOF. *)
          ignore (Server.step ~timeout_ms:10 server);
          match recv server fd dec with
          | None -> ()
          | Some _ -> Alcotest.fail "idle connection survived the reaper"))

(* drain: everything queued is answered and the journal ends compacted
   with one snapshot per live session — the SIGTERM path minus the
   process machinery. *)
let test_drain_snapshots () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tdfsrv-drain-%d" (Unix.getpid ()))
  in
  if Sys.file_exists dir then
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
  with_server
    ~tweak:(fun c ->
      { c with Server.journal = Some (Tdf_io.Journal.default_cfg ~dir) })
    "drain"
    (fun server _cfg ->
      ignore (ok_or_fail (load server ~session:"s" (fixture 79)));
      (match
         Server.handle server
           (Protocol.Eco
              {
                session = "s";
                delta = Protocol.Text "move 4 20 20 0\n";
                radius = None;
                max_widenings = None;
                budget_ms = None;
                jobs = None;
                tiles = None;
                want_placement = false;
              })
       with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "eco: %s" e.Protocol.detail);
      Server.drain server;
      (* Snapshot on disk, wal compacted: a restart replays nothing. *)
      match Tdf_io.Journal.open_ (Tdf_io.Journal.default_cfg ~dir) with
      | Error e -> Alcotest.failf "journal reopen: %s" e
      | Ok (j, r) ->
        Tdf_io.Journal.close j;
        check "wal compacted by drain" true (r.Tdf_io.Journal.records = []);
        check "one snapshot per live session" true
          (List.map
             (fun s -> s.Tdf_io.Journal.snap_session)
             r.Tdf_io.Journal.snapshots
          = [ "s" ]))

(* Satellite 6: the stats reply surfaces the process tile knob, the
   tile.* counters and every session's pinned tile count — and a session
   loaded with "tiles" gets it back after a snapshot-recovery restart. *)
let test_tile_stats_and_recovery () =
  let module Json = Tdf_telemetry.Json in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tdfsrv-tiles-%d" (Unix.getpid ()))
  in
  if Sys.file_exists dir then
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
  let tweak c =
    { c with Server.journal = Some (Tdf_io.Journal.default_cfg ~dir) }
  in
  let d, p = fixture 83 in
  let load_tiled server =
    Server.handle server
      (Protocol.Load_design
         {
           session = "t";
           design = Protocol.Text (Text.design_to_string d);
           placement = Some (Protocol.Text (Text.placement_to_string d p));
           tiles = Some 3;
         })
  in
  let stats server =
    match ok_or_fail (Server.handle server Protocol.Stats) with
    | Protocol.Stats_snapshot j -> j
    | _ -> Alcotest.fail "wrong stats reply"
  in
  let session_tiles j =
    Option.bind (Json.member "session_tiles" j) (Json.member "t")
  in
  with_server ~tweak "tiles" (fun server _cfg ->
      ignore (ok_or_fail (load_tiled server));
      (match
         Server.handle server
           (Protocol.Eco
              {
                session = "t";
                delta = Protocol.Text "move 4 20 20 0\n";
                radius = None;
                max_widenings = None;
                budget_ms = None;
                jobs = None;
                tiles = None;
                want_placement = false;
              })
       with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "eco: %s" e.Protocol.detail);
      let j = stats server in
      let tile = Json.member "tile" j in
      check "stats has tile block" true (tile <> None);
      List.iter
        (fun field ->
          check
            (Printf.sprintf "tile.%s is a counter" field)
            true
            (Option.bind tile (Json.member field) |> Option.is_some))
        [ "tiles"; "passes"; "reconciled"; "conflicts"; "live" ];
      check "session tile pin visible" true
        (session_tiles j = Some (Json.Int 3));
      Server.drain server);
  (* Restart over the same journal dir: the snapshot must rebuild the
     session with its tile pin intact. *)
  with_server ~tweak "tiles2" (fun server _cfg ->
      check "session recovered" true (Server.live_sessions server = 1);
      check "tile pin survives recovery" true
        (session_tiles (stats server) = Some (Json.Int 3)))

(* ---- frame decoder fuzzing ------------------------------------------- *)

let frame_payloads_arb =
  Props.list ~min_len:1 ~max_len:6
    (Props.map
       ~print:(fun s -> Printf.sprintf "%S" s)
       (fun l ->
         let a = Array.of_list l in
         String.init (Array.length a) (fun i -> Char.chr a.(i)))
       (Props.list ~max_len:30 (Props.int_range 0 255)))

(* Feeding a valid frame stream in arbitrary chunks decodes the exact
   payload sequence. *)
let prop_frame_chunked_decode (payloads, splits) =
  let stream = String.concat "" (List.map Frame.encode payloads) in
  let dec = Frame.decoder () in
  let got = ref [] in
  let n = String.length stream in
  let cuts =
    List.sort_uniq compare
      (0 :: n :: List.map (fun f -> int_of_float (f *. float_of_int n)) splits)
  in
  let rec feed = function
    | a :: (b :: _ as rest) ->
      Frame.feed dec (String.sub stream a (b - a));
      let rec drain () =
        match Frame.next dec with
        | Ok (Some p) ->
          got := p :: !got;
          drain ()
        | Ok None -> ()
        | Error e -> Alcotest.failf "valid stream errored: %s" (Frame.error_to_string e)
      in
      drain ();
      feed rest
    | _ -> ()
  in
  feed cuts;
  List.rev !got = payloads

(* A mutated stream (bit flip or truncation) may decode to anything the
   bytes say — but the decoder must stay total: typed results only,
   never an exception, and a poisoned decoder stays poisoned instead of
   spinning. *)
let prop_frame_mutation_total (payloads, pos_frac, bit) =
  let stream = String.concat "" (List.map Frame.encode payloads) in
  let n = String.length stream in
  let data = Bytes.of_string stream in
  let pos = min (n - 1) (int_of_float (pos_frac *. float_of_int n)) in
  (* bit 8 means truncate at [pos] instead of flipping. *)
  let mutated =
    if bit = 8 then Bytes.sub_string data 0 pos
    else begin
      Bytes.set data pos
        (Char.chr (Char.code (Bytes.get data pos) lxor (1 lsl bit)));
      Bytes.to_string data
    end
  in
  let dec = Frame.decoder ~max_frame:(1 lsl 20) () in
  let rec drain budget =
    if budget = 0 then Alcotest.fail "decoder failed to converge"
    else
      match Frame.next dec with
      | Ok (Some _) -> drain (budget - 1)
      | Ok None -> true
      | Error _ -> true
  in
  (match Frame.feed dec mutated with
  | () -> ()
  | exception Invalid_argument _ -> ());
  drain 100

let suite =
  [
    Alcotest.test_case "frame round-trip (bulk and byte-at-a-time)" `Quick
      test_frame_roundtrip;
    Alcotest.test_case "truncated frames need more bytes" `Quick
      test_frame_truncated;
    Alcotest.test_case "oversized length prefix poisons the decoder" `Quick
      test_frame_oversized;
    Alcotest.test_case "bad prefix / bad terminator" `Quick
      test_frame_bad_prefix_and_terminator;
    Alcotest.test_case "request JSON round-trip" `Quick test_request_roundtrip;
    Alcotest.test_case "malformed requests get typed codes" `Quick
      test_request_decode_errors;
    Alcotest.test_case "response JSON round-trip" `Quick test_response_roundtrip;
    Alcotest.test_case "handle: load/eco/get-placement/stats/shutdown" `Quick
      test_handle_flows;
    Alcotest.test_case "byte-identity: wire placement = engine placement" `Quick
      test_byte_identity;
    Alcotest.test_case "LRU eviction honors max_sessions" `Quick
      test_lru_eviction;
    Alcotest.test_case "failpoint kills a request, cache survives" `Quick
      test_failpoint_kill;
    Alcotest.test_case "socket end-to-end via stepped event loop" `Quick
      test_socket_end_to_end;
    Alcotest.test_case "framing loss: one bad-frame reply, then close" `Quick
      test_socket_bad_frame;
    Alcotest.test_case "overload: burst past max_pending is shed typed" `Quick
      test_overload_shed;
    Alcotest.test_case "overload: per-connection queue cap closes abusers"
      `Quick test_conn_queue_overflow;
    Alcotest.test_case "client never re-sends a mutation with a lost reply"
      `Quick test_client_resend_safety;
    Alcotest.test_case "stale socket reclaimed, live and non-socket refused"
      `Quick test_stale_socket_handling;
    Alcotest.test_case "idle connections are reaped" `Quick test_idle_reap;
    Alcotest.test_case "drain compacts the journal behind a snapshot" `Quick
      test_drain_snapshots;
    Alcotest.test_case "stats surfaces tile config, pin survives recovery"
      `Quick test_tile_stats_and_recovery;
    Props.test ~count:40 "frame: chunked decode equals payloads"
      (Props.pair frame_payloads_arb
         (Props.list ~max_len:8 (Props.float_range 0. 1.)))
      prop_frame_chunked_decode;
    Props.test ~count:60 "frame: mutated stream stays total"
      (Props.triple frame_payloads_arb
         (Props.float_range 0. 0.999)
         (Props.int_range 0 8))
      prop_frame_mutation_total;
  ]
