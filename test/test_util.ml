module Prng = Tdf_util.Prng
module Heap = Tdf_util.Heap
module Stats = Tdf_util.Stats

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_of_string_stable () =
  let a = Prng.of_string "case2" and b = Prng.of_string "case2" in
  Alcotest.(check int64) "seeded equal" (Prng.bits64 a) (Prng.bits64 b);
  let c = Prng.of_string "case3" in
  Alcotest.(check bool) "different seed differs" true
    (Prng.bits64 (Prng.of_string "case2") <> Prng.bits64 c)

(* The bound-respecting properties run on the in-repo harness: instead of
   one hand-picked bound per test, the bound itself (and the stream seed)
   is generated, and a violation shrinks to the smallest offending bound. *)
let prop_prng_int_bounds =
  Props.test "prng int stays in [0,n)"
    Props.(pair (int_range 1 1000) (int_range 0 1_000_000))
    (fun (n, seed) ->
      let rng = Prng.create seed in
      let ok = ref true in
      for _ = 1 to 100 do
        let v = Prng.int rng n in
        if v < 0 || v >= n then ok := false
      done;
      !ok)

let prop_prng_int_in_bounds =
  Props.test "prng int_in stays in [lo,hi]"
    Props.(triple (int_range (-500) 500) (int_range 0 1000) (int_range 0 1_000_000))
    (fun (lo, span, seed) ->
      let hi = lo + span in
      let rng = Prng.create seed in
      let ok = ref true in
      for _ = 1 to 100 do
        let v = Prng.int_in rng lo hi in
        if v < lo || v > hi then ok := false
      done;
      !ok)

let prop_prng_float_bounds =
  Props.test "prng float stays in [0,x)"
    Props.(pair (float_range 0.001 1000.) (int_range 0 1_000_000))
    (fun (x, seed) ->
      let rng = Prng.create seed in
      let ok = ref true in
      for _ = 1 to 100 do
        let v = Prng.float rng x in
        if v < 0. || v >= x then ok := false
      done;
      !ok)

let test_prng_gaussian_moments () =
  let rng = Prng.create 10 in
  let n = 20000 in
  let xs = Array.init n (fun _ -> Prng.gaussian rng ~mean:3.0 ~stddev:2.0) in
  let s = Stats.summarize xs in
  Alcotest.(check bool) "mean near 3" true (Float.abs (s.Stats.mean -. 3.0) < 0.1);
  Alcotest.(check bool) "stddev near 2" true (Float.abs (s.Stats.stddev -. 2.0) < 0.1)

let test_prng_shuffle_permutation () =
  let rng = Prng.create 11 in
  let a = Array.init 50 (fun i -> i) in
  Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_prng_split_independent () =
  let rng = Prng.create 12 in
  let child = Prng.split rng in
  Alcotest.(check bool) "streams differ" true (Prng.bits64 rng <> Prng.bits64 child)

let test_heap_pop_order () =
  let h = Heap.create () in
  List.iter (fun k -> Heap.add h ~key:k k) [ 3.; 1.; 2.; -5.; 10.; 0. ];
  let order = ref [] in
  let rec drain () =
    match Heap.pop h with
    | Some (k, _) ->
      order := k :: !order;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list (float 1e-9)))
    "ascending" [ -5.; 0.; 1.; 2.; 3.; 10. ] (List.rev !order)

let test_heap_empty () =
  let h : int Heap.t = Heap.create () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check bool) "pop none" true (Heap.pop h = None);
  Alcotest.check_raises "pop_exn raises" (Invalid_argument "Heap.pop_exn: empty heap")
    (fun () -> ignore (Heap.pop_exn h))

let test_heap_peek () =
  let h = Heap.create () in
  Heap.add h ~key:5. "a";
  Heap.add h ~key:2. "b";
  (match Heap.peek h with
  | Some (k, v) ->
    Alcotest.(check (float 0.)) "peek key" 2. k;
    Alcotest.(check string) "peek value" "b" v
  | None -> Alcotest.fail "expected peek");
  Alcotest.(check int) "length" 2 (Heap.length h)

let test_heap_clear () =
  let h = Heap.create () in
  for i = 1 to 10 do
    Heap.add h ~key:(float_of_int i) i
  done;
  Heap.clear h;
  Alcotest.(check bool) "cleared" true (Heap.is_empty h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:200
    QCheck.(list (float_bound_exclusive 1000.))
    (fun keys ->
      let h = Heap.create () in
      List.iter (fun k -> Heap.add h ~key:k ()) keys;
      let rec drain acc =
        match Heap.pop h with Some (k, ()) -> drain (k :: acc) | None -> List.rev acc
      in
      let drained = drain [] in
      drained = List.sort compare keys)

module Heap_int = Tdf_util.Heap_int

let test_heap_int_pop_order () =
  let h = Heap_int.create () in
  List.iter (fun k -> Heap_int.add h ~key:k k) [ 3; 1; 2; -5; 10; 0 ];
  let order = ref [] in
  let rec drain () =
    match Heap_int.pop h with
    | Some (k, _) ->
      order := k :: !order;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "ascending" [ -5; 0; 1; 2; 3; 10 ] (List.rev !order)

let test_heap_int_top_accessors () =
  let h = Heap_int.create ~capacity:4 () in
  Heap_int.add h ~key:5 50;
  Heap_int.add h ~key:2 20;
  Heap_int.add h ~key:7 70;
  Alcotest.(check int) "top key" 2 (Heap_int.top_key h);
  Alcotest.(check int) "top value" 20 (Heap_int.top_value h);
  Heap_int.remove_top h;
  Alcotest.(check int) "next key" 5 (Heap_int.top_key h);
  Alcotest.(check int) "length" 2 (Heap_int.length h);
  Heap_int.clear h;
  Alcotest.(check bool) "cleared" true (Heap_int.is_empty h);
  Alcotest.check_raises "top_key raises"
    (Invalid_argument "Heap_int.top_key: empty heap") (fun () ->
      ignore (Heap_int.top_key h));
  Alcotest.check_raises "remove_top raises"
    (Invalid_argument "Heap_int.remove_top: empty heap") (fun () ->
      Heap_int.remove_top h)

let prop_heap_int_sorts =
  QCheck.Test.make ~name:"int heap drains in sorted order" ~count:200
    QCheck.(list (int_range (-1000) 1000))
    (fun keys ->
      let h = Heap_int.create () in
      List.iter (fun k -> Heap_int.add h ~key:k 0) keys;
      let rec drain acc =
        match Heap_int.pop h with
        | Some (k, _) -> drain (k :: acc)
        | None -> List.rev acc
      in
      drain [] = List.sort compare keys)

(* Model check: an arbitrary interleaving of add/pop/clear behaves like a
   sorted multiset — every pop returns a minimal key with a value that was
   inserted under it, and length tracks the model throughout. *)
type heap_op = Add of int * int | Pop | Clear

let heap_op_arb =
  let print = function
    | Add (k, v) -> Printf.sprintf "Add(%d,%d)" k v
    | Pop -> "Pop"
    | Clear -> "Clear"
  in
  let shrink = function
    | Add (k, v) ->
      [ Pop ]
      @ (if k <> 0 then [ Add (k / 2, v) ] else [])
      @ if v <> 0 then [ Add (k, v / 2) ] else []
    | Pop -> []
    | Clear -> [ Pop ]
  in
  Props.make ~shrink ~print (fun rng ->
      match Tdf_util.Prng.int rng 10 with
      | 0 -> Clear
      | 1 | 2 | 3 -> Pop
      | _ -> Add (Tdf_util.Prng.int_in rng (-50) 50, Tdf_util.Prng.int rng 1000))

let prop_heap_int_model =
  Props.test "int heap matches sorted-multiset model" ~count:200
    (Props.list ~max_len:60 heap_op_arb)
    (fun ops ->
      let h = Heap_int.create () in
      let model = ref [] in
      (* unordered (key, value) multiset mirroring the heap *)
      List.for_all
        (fun op ->
          match op with
          | Add (k, v) ->
            Heap_int.add h ~key:k v;
            model := (k, v) :: !model;
            Heap_int.length h = List.length !model
          | Clear ->
            Heap_int.clear h;
            model := [];
            Heap_int.is_empty h
          | Pop -> (
            match (Heap_int.pop h, !model) with
            | None, [] -> true
            | None, _ :: _ | Some _, [] -> false
            | Some (k, v), m ->
              let kmin =
                List.fold_left (fun acc (k', _) -> min acc k') max_int m
              in
              if k <> kmin || not (List.mem (k, v) m) then false
              else begin
                let removed = ref false in
                model :=
                  List.filter
                    (fun e ->
                      if (not !removed) && e = (k, v) then begin
                        removed := true;
                        false
                      end
                      else true)
                    m;
                true
              end))
        ops)

module Heap_radix = Tdf_util.Heap_radix

(* The radix heap against the same sorted-multiset model, plus its monotone
   contract: once a minimum was extracted, a smaller {!Heap_radix.add} must
   raise (loud invariant), {!Heap_radix.add_clamped} must lift the key to
   the floor and report it, and pops never go below the floor.  The op
   stream reuses {!heap_op_arb}, so out-of-order pushes (keys in [-50, 50]
   against a rising floor), duplicate priorities and decrease-key-by-
   reinsertion interleavings all occur and shrink with TDFLOW_PROP_SEED
   replay like every Props test. *)
let prop_heap_radix_model =
  Props.test "radix heap matches model + monotone contract" ~count:300
    (Props.list ~max_len:60 heap_op_arb)
    (fun ops ->
      let h = Heap_radix.create () in
      let model = ref [] in
      let floor = ref min_int in
      let remove_one k v =
        let removed = ref false in
        model :=
          List.filter
            (fun e ->
              if (not !removed) && e = (k, v) then begin
                removed := true;
                false
              end
              else true)
            !model;
        !removed
      in
      List.for_all
        (fun op ->
          match op with
          | Add (k, v) when k < !floor ->
            let raised =
              match Heap_radix.add h ~key:k v with
              | () -> false
              | exception Invalid_argument _ -> true
            in
            let clamped = Heap_radix.add_clamped h ~key:k v in
            model := (!floor, v) :: !model;
            raised && clamped && Heap_radix.length h = List.length !model
          | Add (k, v) ->
            Heap_radix.add h ~key:k v;
            model := (k, v) :: !model;
            Heap_radix.length h = List.length !model
          | Clear ->
            Heap_radix.clear h;
            model := [];
            floor := min_int;
            Heap_radix.is_empty h && Heap_radix.last_extracted h = min_int
          | Pop -> (
            match (Heap_radix.pop h, !model) with
            | None, [] -> true
            | None, _ :: _ | Some _, [] -> false
            | Some (k, v), m ->
              let kmin =
                List.fold_left (fun acc (k', _) -> min acc k') max_int m
              in
              if k <> kmin || k < !floor then false
              else begin
                floor := k;
                remove_one k v && Heap_radix.last_extracted h = k
              end))
        ops)

let test_heap_radix_monotone_violation () =
  let h = Heap_radix.create () in
  Heap_radix.add h ~key:5 50;
  Heap_radix.add h ~key:3 30;
  Alcotest.(check (pair int int))
    "min first" (3, 30)
    (Option.get (Heap_radix.pop h));
  (* floor is now 3: going below must raise, clamping must lift to 3 *)
  Alcotest.check_raises "below-floor add raises"
    (Invalid_argument
       "Heap_radix.add: monotone violation (key below extracted min)")
    (fun () -> Heap_radix.add h ~key:2 20);
  Alcotest.(check bool) "clamp reported" true (Heap_radix.add_clamped h ~key:2 20);
  Alcotest.(check bool)
    "legal add_clamped does not clamp" false
    (Heap_radix.add_clamped h ~key:7 70);
  Alcotest.(check (pair int int))
    "clamped entry popped at floor" (3, 20)
    (Option.get (Heap_radix.pop h));
  Alcotest.(check (pair int int))
    "then original entry" (5, 50)
    (Option.get (Heap_radix.pop h));
  Alcotest.(check (pair int int))
    "then late entry" (7, 70)
    (Option.get (Heap_radix.pop h));
  Alcotest.(check bool) "drained" true (Heap_radix.is_empty h);
  Heap_radix.clear h;
  (* clear resets the floor: small keys are legal again *)
  Heap_radix.add h ~key:(-41) 1;
  Alcotest.(check int) "negative key after clear" (-41) (Heap_radix.top_key h)

(* Sorted drain across a wide signed range: the bucket-by-highest-
   differing-bit layout must order two's-complement keys exactly like
   signed comparison (the XOR bias argument in heap_radix.ml). *)
let prop_heap_radix_sorts =
  QCheck.Test.make ~name:"radix heap drains sorted (signed keys)" ~count:200
    QCheck.(list (int_range (-1_000_000_000) 1_000_000_000))
    (fun keys ->
      let h = Heap_radix.create () in
      List.iteri (fun i k -> Heap_radix.add h ~key:k i) keys;
      let rec drain acc =
        if Heap_radix.is_empty h then List.rev acc
        else begin
          let k = Heap_radix.top_key h in
          Heap_radix.remove_top h;
          drain (k :: acc)
        end
      in
      drain [] = List.sort compare keys)

let prop_heap_int_matches_float_heap_tie_order =
  (* Migrating a caller from float keys to exact int keys must not perturb
     its traversal: on duplicate keys both heaps pop values in the same
     order (identical sift logic). *)
  QCheck.Test.make ~name:"int heap tie order matches float heap" ~count:200
    QCheck.(list (pair (int_range 0 20) small_nat))
    (fun entries ->
      let hf = Heap.create () and hi = Heap_int.create () in
      List.iter
        (fun (k, v) ->
          Heap.add hf ~key:(float_of_int k) v;
          Heap_int.add hi ~key:k v)
        entries;
      let rec drain acc =
        match (Heap.pop hf, Heap_int.pop hi) with
        | None, None -> acc
        | Some (fk, fv), Some (ik, iv) ->
          drain (acc && int_of_float fk = ik && fv = iv)
        | _ -> false
      in
      drain true)

let test_stats_summary () =
  let s = Stats.summarize [| 1.; 2.; 3.; 4. |] in
  Alcotest.(check (float 1e-9)) "mean" 2.5 s.Stats.mean;
  Alcotest.(check (float 1e-9)) "max" 4. s.Stats.max;
  Alcotest.(check (float 1e-9)) "min" 1. s.Stats.min;
  Alcotest.(check (float 1e-9)) "total" 10. s.Stats.total;
  Alcotest.(check int) "count" 4 s.Stats.count

let test_stats_empty () =
  let s = Stats.summarize [||] in
  Alcotest.(check int) "count 0" 0 s.Stats.count;
  Alcotest.(check (float 0.)) "mean 0" 0. s.Stats.mean;
  Alcotest.(check (float 0.)) "percentile 0" 0. (Stats.percentile [||] 50.)

let test_stats_percentile () =
  let xs = Array.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.(check (float 1e-9)) "p50" 50. (Stats.percentile xs 50.);
  Alcotest.(check (float 1e-9)) "p100" 100. (Stats.percentile xs 100.);
  Alcotest.(check (float 1e-9)) "p1" 1. (Stats.percentile xs 1.)

let test_stats_geomean () =
  Alcotest.(check (float 1e-9)) "geomean" 2. (Stats.geomean [| 1.; 2.; 4. |]);
  Alcotest.(check (float 0.)) "nonpositive yields 0" 0. (Stats.geomean [| 1.; 0. |]);
  Alcotest.(check (float 0.)) "empty yields 0" 0. (Stats.geomean [||])

let test_timer () =
  let x, dt = Tdf_util.Timer.time (fun () -> 42) in
  Alcotest.(check int) "result" 42 x;
  Alcotest.(check bool) "non-negative" true (dt >= 0.)

let test_timer_monotonic () =
  let module Timer = Tdf_util.Timer in
  let prev = ref (Timer.now_ns ()) in
  for _ = 1 to 1000 do
    let t = Timer.now_ns () in
    Alcotest.(check bool) "now_ns never goes backwards" true
      (Int64.compare t !prev >= 0);
    prev := t
  done;
  Alcotest.(check bool) "elapsed_ns non-negative" true
    (Int64.compare (Timer.elapsed_ns !prev) 0L >= 0)

let test_timer_conversions () =
  let module Timer = Tdf_util.Timer in
  Alcotest.(check (float 1e-9)) "ns_to_s" 1.5 (Timer.ns_to_s 1_500_000_000L);
  Alcotest.(check (float 1e-9)) "ns_to_ms" 2.25 (Timer.ns_to_ms 2_250_000L);
  (* a real sleep must register on the monotonic clock *)
  let t0 = Timer.now_ns () in
  Unix.sleepf 0.01;
  let dt = Timer.ns_to_s (Timer.elapsed_ns t0) in
  Alcotest.(check bool) "sleep measured" true (dt >= 0.009 && dt < 5.)

let suite =
  [
    Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
    Alcotest.test_case "prng of_string stable" `Quick test_prng_of_string_stable;
    prop_prng_int_bounds;
    prop_prng_int_in_bounds;
    prop_prng_float_bounds;
    Alcotest.test_case "prng gaussian moments" `Quick test_prng_gaussian_moments;
    Alcotest.test_case "prng shuffle permutation" `Quick test_prng_shuffle_permutation;
    Alcotest.test_case "prng split independent" `Quick test_prng_split_independent;
    Alcotest.test_case "heap pop order" `Quick test_heap_pop_order;
    Alcotest.test_case "heap empty" `Quick test_heap_empty;
    Alcotest.test_case "heap peek/length" `Quick test_heap_peek;
    Alcotest.test_case "heap clear" `Quick test_heap_clear;
    QCheck_alcotest.to_alcotest prop_heap_sorts;
    Alcotest.test_case "int heap pop order" `Quick test_heap_int_pop_order;
    Alcotest.test_case "int heap top accessors" `Quick test_heap_int_top_accessors;
    QCheck_alcotest.to_alcotest prop_heap_int_sorts;
    prop_heap_int_model;
    QCheck_alcotest.to_alcotest prop_heap_int_matches_float_heap_tie_order;
    prop_heap_radix_model;
    Alcotest.test_case "radix heap monotone contract" `Quick
      test_heap_radix_monotone_violation;
    QCheck_alcotest.to_alcotest prop_heap_radix_sorts;
    Alcotest.test_case "stats summary" `Quick test_stats_summary;
    Alcotest.test_case "stats empty" `Quick test_stats_empty;
    Alcotest.test_case "stats percentile" `Quick test_stats_percentile;
    Alcotest.test_case "stats geomean" `Quick test_stats_geomean;
    Alcotest.test_case "timer" `Quick test_timer;
    Alcotest.test_case "timer monotonic" `Quick test_timer_monotonic;
    Alcotest.test_case "timer conversions" `Quick test_timer_conversions;
  ]
