(* Scale-sweep regression: benchgen-scaled contest cases through the full
   legalizer under every solver variant.  TDFLOW_SOLVER (and the runtime
   override) selects Mcmf's engine only — the legalizer's flow passes
   never consult Mcmf, and the ECO precheck reads only the (unique) max
   flow value — so placements must stay legal and byte-identical across
   ssp/radix/blocking.  The radix search frontier, which genuinely may
   reorder near-tied expansions, is checked for legality and run-to-run
   determinism instead.

   ISSUE/ROADMAP name "iccad2022/case1", but that suite's catalog starts
   at case2 (lib/benchgen/spec.ml); its smallest case stands in.

   The sweep is runtime-bounded so tier-1 stays fast: the whole matrix
   must finish inside a generous wall-clock cap (it takes ~2 s on the
   reference container). *)

module Spec = Tdf_benchgen.Spec
module Gen = Tdf_benchgen.Gen
module Flow3d = Tdf_legalizer.Flow3d
module Config = Tdf_legalizer.Config
module Legality = Tdf_metrics.Legality
module Delta = Tdf_io.Delta
module Eco = Tdf_incremental.Eco
module Mcmf = Tdf_flow.Mcmf

let cases = [ (Spec.Iccad2022, "case2"); (Spec.Iccad2023, "case2") ]
let scales = [ 0.1; 0.25 ]
let wall_cap_s = 300.

let with_variant v f =
  let saved = Mcmf.default_variant () in
  Mcmf.set_default_variant v;
  Fun.protect ~finally:(fun () -> Mcmf.set_default_variant saved) f

let check_legal what design placement =
  let rep = Legality.check design placement in
  if rep.Legality.n_violations <> 0 then
    Alcotest.failf "%s: %d violations: %s" what rep.Legality.n_violations
      (String.concat "; " rep.Legality.messages)

let legalize_text ?cfg what design =
  let r = Flow3d.legalize ?cfg design in
  check_legal what design r.Flow3d.placement;
  Tdf_io.Text.placement_to_string design r.Flow3d.placement

let test_scale_sweep_cross_variant () =
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun (suite, case) ->
      List.iter
        (fun scale ->
          let what =
            Printf.sprintf "%s/%s @ %.2f" (Spec.suite_slug suite) case scale
          in
          let design = Gen.generate ~scale (Spec.find suite case) in
          let reference =
            with_variant Mcmf.Ssp (fun () -> legalize_text what design)
          in
          List.iter
            (fun v ->
              let got =
                with_variant v (fun () -> legalize_text what design)
              in
              Alcotest.(check string)
                (Printf.sprintf "%s: %s matches ssp" what (Mcmf.variant_name v))
                reference got)
            [ Mcmf.Radix; Mcmf.Blocking ])
        scales)
    cases;
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "scale sweep under %.0f s (took %.1f s)" wall_cap_s dt)
    true (dt < wall_cap_s)

(* ECO is the one legalization path that does run Mcmf (the feasibility
   precheck); a delta applied under each variant must still produce
   byte-identical placements. *)
let test_eco_cross_variant () =
  let design =
    Gen.generate ~scale:0.1 (Spec.find Spec.Iccad2023 "case2")
  in
  let base = Flow3d.legalize design in
  check_legal "eco base" design base.Flow3d.placement;
  let prev = base.Flow3d.placement in
  let delta =
    [
      Delta.Remove { cell = 7 };
      Delta.Add { name = "eco_a"; x = 30; y = 20; die = 0; widths = [| 4; 4 |] };
      Delta.Add { name = "eco_b"; x = 44; y = 12; die = 1; widths = [| 6; 6 |] };
    ]
  in
  let run_once v =
    with_variant v (fun () ->
        match Eco.run design prev delta with
        | Error e -> Alcotest.fail (Eco.error_to_string e)
        | Ok r ->
          check_legal
            ("eco " ^ Mcmf.variant_name v)
            r.Eco.design r.Eco.placement;
          Tdf_io.Text.placement_to_string r.Eco.design r.Eco.placement)
  in
  let reference = run_once Mcmf.Ssp in
  List.iter
    (fun v ->
      Alcotest.(check string)
        ("eco placement matches ssp under " ^ Mcmf.variant_name v)
        reference (run_once v))
    [ Mcmf.Radix; Mcmf.Blocking ]

(* The radix frontier reorders near-tied frontier pops, so it is not
   byte-compared against the binary frontier — but it must stay legal,
   deterministic across repeated runs, and tiled-equals-untiled under
   itself. *)
let test_radix_frontier_legal_deterministic () =
  let cfg = { Config.default with Config.frontier = Config.Radix } in
  let design = Gen.generate ~scale:0.1 (Spec.find Spec.Iccad2023 "case2") in
  let a = legalize_text ~cfg "radix frontier run 1" design in
  let b = legalize_text ~cfg "radix frontier run 2" design in
  Alcotest.(check string) "radix frontier deterministic" a b;
  match Flow3d.run_tiled ~cfg ~tiles:4 design with
  | Error e -> Alcotest.fail (Flow3d.error_to_string e)
  | Ok r ->
    check_legal "radix frontier tiled" design r.Flow3d.placement;
    Alcotest.(check string)
      "radix frontier: tiled matches untiled" a
      (Tdf_io.Text.placement_to_string design r.Flow3d.placement)

let suite =
  [
    Alcotest.test_case "scale sweep: placements byte-identical across variants"
      `Quick test_scale_sweep_cross_variant;
    Alcotest.test_case "eco: placements byte-identical across variants" `Quick
      test_eco_cross_variant;
    Alcotest.test_case "radix frontier: legal + deterministic + tiled" `Quick
      test_radix_frontier_legal_deterministic;
  ]
